// Package slj reproduces "Pose Estimation for Evaluating Standing Long
// Jumps via Dynamic Bayesian Networks" (Hsu, Yen, Chen, Ho — 28th IEEE
// ICDCS Workshops, 2008) as a complete Go library.
//
// The paper's system analyses side-view video of a standing long jump in
// three parts, all implemented here:
//
//  1. Object extraction (Section 2): background subtraction over a
//     moving-average window with max-normalisation and thresholding,
//     followed by median-filter smoothing (internal/extract).
//  2. Pose estimation (Sections 3–4): Zhang–Suen thinning of the
//     silhouette; conversion to a skeleton graph with adjacent-junction
//     removal, maximum-spanning-tree loop cutting and one-at-a-time
//     branch pruning (internal/thinning, internal/skelgraph); key-point
//     extraction and eight-area feature encoding around the waist
//     (internal/keypoint); and a bank of per-pose dynamic Bayesian
//     networks over 22 poses and 4 jump stages (internal/bayes,
//     internal/dbn, internal/pose).
//  3. Scoring (Section 1/6): rules over the recognised pose sequence
//     that flag deviations from the standing-long-jump standard and emit
//     coaching advice (internal/scoring).
//
// Because the paper's studio clips are unavailable, internal/synth
// generates the closest synthetic equivalent — an articulated 2-D body
// choreographed through a full jump and rendered over a noisy dark
// backdrop — and internal/ga reimplements the genetic-algorithm
// stick-model fitter of the authors' previous work as the baseline.
//
// This package is the public face: System wires the whole chain together
// (frame → silhouette → skeleton → key points → DBN → pose → report) and
// is what the example programs and command-line tools consume.
//
// Quick start:
//
//	ds, _ := slj.GenerateDataset(slj.DatasetOptions(42))
//	sys, _ := slj.NewSystem()
//	_ = sys.Train(ds.Train)
//	summary, _, _ := sys.Evaluate(ds.Test)
//	fmt.Print(summary.Table())
package slj
