// Golden tests for the per-worker frame arena: the arena-backed hot
// path must be bit-identical to the pre-arena allocate-per-frame path
// (WithFrameScratch(false)) at every worker count, and the steady-state
// per-frame cost must stay at zero heap allocations.
package slj

import (
	"bytes"
	"reflect"
	"testing"
)

// arenaVariants are the front-end configurations whose outputs must not
// depend on whether the arena is enabled.
var arenaVariants = []struct {
	name string
	opts []Option
}{
	{"default", nil},
	{"ground-truth", []Option{WithGroundTruthSilhouettes(true)}},
	{"auto-orient+roi", []Option{WithAutoOrient(true), WithROITracking(true)}},
}

// TestArenaTrainMatchesPreArena pins the trained model bytes: training
// through the arena must produce the identical classifier.
func TestArenaTrainMatchesPreArena(t *testing.T) {
	ds := smallDataset(t, 71)
	for _, v := range arenaVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			_, want := trainGolden(t, ds, append([]Option{WithFrameScratch(false)}, v.opts...)...)
			_, got := trainGolden(t, ds, v.opts...)
			if !bytes.Equal(got, want) {
				t.Error("arena-trained model differs from pre-arena model")
			}
		})
	}
}

// TestArenaMatchesPreArena runs Evaluate and ClassifyAll at workers
// {1, 2, 8} with the arena enabled and compares every result against the
// sequential pre-arena path.
func TestArenaMatchesPreArena(t *testing.T) {
	ds := smallDataset(t, 72)
	for _, v := range arenaVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			ref, model := trainGolden(t, ds, append([]Option{WithFrameScratch(false)}, v.opts...)...)
			wantSum, wantConf, err := ref.Evaluate(ds.Test)
			if err != nil {
				t.Fatal(err)
			}
			var wantRes [][]Result
			for _, lc := range ds.Test {
				res, err := ref.ClassifyClip(lc)
				if err != nil {
					t.Fatal(err)
				}
				wantRes = append(wantRes, res)
			}
			for _, workers := range []int{1, 2, 8} {
				eng, err := NewEngine(workers, v.opts...)
				if err != nil {
					t.Fatal(err)
				}
				if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
					t.Fatal(err)
				}
				sum, conf, err := eng.Evaluate(ds.Test)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sum, wantSum) {
					t.Errorf("workers=%d: arena summary differs from pre-arena", workers)
				}
				if !reflect.DeepEqual(conf, wantConf) {
					t.Errorf("workers=%d: arena confusion differs from pre-arena", workers)
				}
				got, err := eng.ClassifyAll(ds.Test)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, wantRes) {
					t.Errorf("workers=%d: arena ClassifyAll differs from pre-arena", workers)
				}
			}
		})
	}
}

// TestFrameAnalysisAllocs pins the zero-allocation per-frame hot path:
// once the arena and the imaging pool are warm, the whole front end
// (extraction → thinning → graph → key points → encoding) must run
// without heap allocation. The issue budget allows 8 allocs/op of slack
// for toolchain drift.
func TestFrameAnalysisAllocs(t *testing.T) {
	ds := smallDataset(t, 73)
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	frame := lc.Clip.Frames[len(lc.Clip.Frames)/2].Image
	for i := 0; i < 5; i++ { // warm the arena and the imaging pool
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := sys.AnalyzeFrame(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("AnalyzeFrame allocates %.1f objects per frame in steady state, want <= 8", allocs)
	}
}
