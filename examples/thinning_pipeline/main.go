// Thinning pipeline: a visual walk through Section 3 — silhouette → raw
// Zhang–Suen thinning → simplified graph (adjacent-junction removal, loop
// cut, pruning) → key points, rendered as ASCII art for one pose.
package main

import (
	"fmt"
	"log"

	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/synth"
	"repro/internal/thinning"
)

func main() {
	log.SetFlags(0)

	p := pose.CrouchHandsBackward
	s := pose.Compute(imaging.Pointf{X: 110, Y: 100}, 90, pose.Angles(p), pose.DefaultProportions())
	sil := synth.RenderSilhouette(s, synth.DefaultShape(), 90, 220, 160)

	fmt.Printf("pose: %v\n\n--- silhouette (Figure 1c analogue) ---\n%s\n",
		p, imaging.ASCII(sil, 4))

	raw := thinning.Thin(sil, thinning.ZhangSuen)
	m := thinning.Measure(raw)
	fmt.Printf("--- raw Z-S thinning (Figure 2): %d px, %d endpoints, %d junctions, %d loops ---\n%s\n",
		m.Pixels, m.Endpoints, m.Junctions, m.Loops, imaging.ASCII(raw, 4))

	g, err := skelgraph.Build(raw)
	if err != nil {
		log.Fatal(err)
	}
	removed := g.Prune(skelgraph.DefaultPruneLen)
	fmt.Printf("--- simplified graph (Figures 3-4): %v, %d noisy branches pruned ---\n%s\n",
		g, removed, imaging.ASCII(g.ToBinary(), 4))

	kp, err := keypoint.FromGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := keypoint.Encode(kp, keypoint.DefaultPartitions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- key points (Figure 6 encoding, waist at %v) ---\n", kp.Waist)
	for _, part := range keypoint.Parts() {
		if pos, ok := kp.At(part); ok {
			fmt.Printf("  %-6v at %-9v area %d\n", part, pos, enc.Area[int(part)-1])
		} else {
			fmt.Printf("  %-6v not found (area 0)\n", part)
		}
	}
}
