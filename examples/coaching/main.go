// Coaching: the use-case from the paper's introduction — a teacher (or a
// self-training student) gets automatic advice about incorrect movements.
// Train on a mixed corpus, then grade one standard jump and one jump that
// falls backward on landing.
package main

import (
	"fmt"
	"log"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/pose"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// The training corpus includes fault clips so the classifier knows
	// the deviant poses too.
	ds, err := slj.GenerateDataset(dataset.GenOptions{
		TrainClips: 8,
		TestClips:  1,
		Seed:       7,
		FaultEvery: 3,
		VaryBody:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		log.Fatal(err)
	}

	grade := func(name string, script []synth.Step, seed int64) {
		spec := synth.DefaultSpec(seed)
		spec.Script = script
		clip, err := synth.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		report, seq, err := sys.Coach(dataset.LabeledClip{Name: name, Clip: clip})
		if err != nil {
			log.Fatal(err)
		}
		recognised := 0
		for _, p := range seq {
			if p != pose.PoseUnknown {
				recognised++
			}
		}
		fmt.Printf("=== %s (%d/%d frames recognised) ===\n%s\n",
			name, recognised, len(seq), report)
	}

	grade("standard jump", synth.DefaultScript(), 1001)
	grade("falls backward on landing", synth.FaultyScript(pose.LandFallBack), 1002)
	grade("arches back in flight", synth.FaultyScript(pose.AirArch), 1003)
}
