// Quickstart: generate a small synthetic corpus, train the full system
// (extraction → thinning → skeleton graph → key points → DBN), evaluate
// on held-out clips and print the Section 5-style accuracy table.
package main

import (
	"fmt"
	"log"

	slj "repro"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// A reduced corpus so the example runs in seconds; sljexp -exp sec5
	// runs the full 12/3 split.
	ds, err := slj.GenerateDataset(dataset.GenOptions{
		TrainClips: 6,
		TestClips:  2,
		Seed:       42,
		VaryBody:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.TotalFrames()
	fmt.Printf("generated %d training frames, %d test frames\n", train, test)

	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		log.Fatal(err)
	}

	summary, confusion, err := sys.Evaluate(ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-clip accuracy (paper band: 81%-87%):")
	fmt.Print(summary.Table())
	fmt.Printf("unknown rate: %.1f%%\n", 100*confusion.UnknownRate())

	// Inspect one frame end to end.
	lc := ds.Test[0]
	sys.SetBackground(lc.Clip.Background)
	fa, err := sys.AnalyzeFrame(lc.Clip.Frames[10].Image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframe 10 of %s: silhouette %d px, skeleton %d px, key points ok: %v\n",
		lc.Name, fa.Silhouette.Count(), fa.Skeleton.Count(), fa.KeyPointsOK)
	if fa.KeyPointsOK {
		fmt.Printf("feature encoding (areas around the waist): %v\n", fa.Encoding.Area)
	}
}
