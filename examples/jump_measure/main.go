// Jump measurement: the number a PE teacher actually records. Track the
// jumper through a clip, measure the distance between the take-off and
// landing foot positions, and decode the pose sequence jointly with the
// Viterbi extension for a clean per-stage timeline.
package main

import (
	"fmt"
	"log"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/pose"
)

func main() {
	log.SetFlags(0)

	ds, err := slj.GenerateDataset(dataset.GenOptions{
		TrainClips: 6,
		TestClips:  2,
		Seed:       99,
		VaryBody:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		log.Fatal(err)
	}

	for _, lc := range ds.Test {
		m, err := sys.MeasureJump(lc)
		if err != nil {
			log.Fatalf("%s: %v", lc.Name, err)
		}
		fmt.Printf("=== %s ===\n", lc.Name)
		fmt.Printf("jump distance: %.0f px = %.2f body heights "+
			"(take-off frame %d at x=%.0f, landing frame %d at x=%.0f)\n",
			m.DistancePx, m.BodyHeights, m.TakeoffFrame, m.TakeoffX, m.LandingFrame, m.LandingX)

		seq, err := sys.ClassifyClipViterbi(lc)
		if err != nil {
			log.Fatal(err)
		}
		// Compress the decoded sequence into a stage timeline.
		fmt.Print("stage timeline: ")
		var lastStage pose.Stage
		for i, p := range seq {
			if s := pose.StageOf(p); s != lastStage {
				if lastStage != 0 {
					fmt.Print(" → ")
				}
				fmt.Printf("%v@%d", s, i)
				lastStage = s
			}
		}
		fmt.Println()

		correct := 0
		for i, p := range seq {
			if p == lc.Clip.Frames[i].Label {
				correct++
			}
		}
		fmt.Printf("Viterbi pose accuracy: %d/%d frames\n\n", correct, len(seq))
	}
}
