// GA baseline: reproduce the paper's motivation for replacing its
// previous genetic-algorithm stick-model fitter with thinning — run both
// on the same silhouette and compare wall-clock cost and the key points
// they produce.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/ga"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/pose"
	"repro/internal/skelgraph"
	"repro/internal/synth"
	"repro/internal/thinning"
)

func main() {
	log.SetFlags(0)

	truth := pose.TakeoffExtension
	s := pose.Compute(imaging.Pointf{X: 150, Y: 100}, 90, pose.Angles(truth), pose.DefaultProportions())
	sil := synth.RenderSilhouette(s, synth.DefaultShape(), 90, 320, 200)
	fmt.Printf("target pose: %v (silhouette %d px)\n\n", truth, sil.Count())

	// Previous work [1]: GA fit of the stick model.
	t0 := time.Now()
	fit, err := ga.Fit(sil, ga.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	gaTime := time.Since(t0)
	kpGA := fit.KeyPoints(pose.DefaultProportions())
	fmt.Printf("GA stick-model fit: IoU %.3f, %d fitness evaluations, %v\n",
		fit.Fitness, fit.Evaluations, gaTime)

	// This paper: thinning + graph clean-up.
	t1 := time.Now()
	skel := thinning.Thin(sil, thinning.ZhangSuen)
	g, err := skelgraph.Build(skel)
	if err != nil {
		log.Fatal(err)
	}
	g.Prune(skelgraph.DefaultPruneLen)
	kpThin, err := keypoint.FromGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	thinTime := time.Since(t1)
	fmt.Printf("thinning pipeline:  %v (%.0fx faster)\n\n", thinTime,
		float64(gaTime)/float64(thinTime))

	fmt.Printf("%-6s %-14s %-14s\n", "part", "GA", "thinning")
	for _, part := range keypoint.Parts() {
		a, aok := kpGA.At(part)
		b, bok := kpThin.At(part)
		as, bs := "-", "-"
		if aok {
			as = a.String()
		}
		if bok {
			bs = b.String()
		}
		fmt.Printf("%-6v %-14s %-14s\n", part, as, bs)
	}
	fmt.Println("\nthe paper's conclusion: the GA needs stick sizes given beforehand and is")
	fmt.Println("very time-consuming; thinning is rougher but fast — both visible above.")
}
