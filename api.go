package slj

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/dbn"
	"repro/internal/extract"
	"repro/internal/ga"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/obs"
	"repro/internal/pose"
	"repro/internal/scoring"
	"repro/internal/skelgraph"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/thinning"
	"repro/internal/track"
)

// Re-exported domain types, so the public API is usable without importing
// the internal packages directly.
type (
	// Pose is one of the 22 defined poses (or PoseUnknown).
	Pose = pose.Pose
	// Stage is one of the four jump stages.
	Stage = pose.Stage
	// KeyPoints are the five located body key points plus the waist.
	KeyPoints = keypoint.KeyPoints
	// Encoding is the Figure 6 area feature vector.
	Encoding = keypoint.Encoding
	// Result is one frame's classification.
	Result = dbn.Result
	// Report is a scored coaching report.
	Report = scoring.Report
	// Summary is the per-clip accuracy table.
	Summary = stats.Summary
	// Confusion is the pose confusion matrix.
	Confusion = stats.Confusion
	// Dataset is a train/test split of labelled clips.
	Dataset = dataset.Dataset
	// LabeledClip is one named clip with ground truth.
	LabeledClip = dataset.LabeledClip
	// Clip is a generated video clip.
	Clip = synth.Clip
	// Frame is one clip frame.
	Frame = synth.Frame
	// RGB is a colour image.
	RGB = imaging.RGB
	// Binary is a bi-level image.
	Binary = imaging.Binary
	// ClassifierConfig tunes the DBN bank.
	ClassifierConfig = dbn.Config
	// GAConfig tunes the GA stick-model front end.
	GAConfig = ga.Config
)

// ErrNoBackground is returned when frames are analysed before a
// background is installed.
var ErrNoBackground = extract.ErrNoBackground

// FrontEnd selects how key points are derived from a silhouette.
type FrontEnd int

// Front-end choices.
const (
	// FrontEndThinning is the paper's pipeline: Z-S thinning → skeleton
	// graph → key points.
	FrontEndThinning FrontEnd = iota + 1
	// FrontEndGA is the authors' previous system: genetic-algorithm
	// stick-model fitting → key points. Far slower (the paper's reason
	// for abandoning it); exposed for the end-to-end comparison of
	// experiment EXT7.
	FrontEndGA
)

// Options configures a System.
type Options struct {
	// Partitions is the number of feature-encoding areas (paper: 8).
	Partitions int
	// Rings is the number of radial feature bands (0 = paper default,
	// radial features off); see keypoint.EncodeRadial.
	Rings int
	// PruneLen is the noisy-branch threshold in skeleton vertices
	// (paper: 10).
	PruneLen int
	// Thinning selects the skeletonisation algorithm (paper: Z-S).
	Thinning thinning.Algorithm
	// Extractor options forwarded to the Section 2 extractor.
	Extractor []extract.Option
	// Classifier tunes the DBN bank; zero value means DefaultConfig
	// with Partitions synchronised.
	Classifier *dbn.Config
	// UseGroundTruthSilhouettes skips the Section 2 extractor and feeds
	// the clip's noise-free silhouettes into thinning — an ablation to
	// separate extraction errors from skeleton/DBN errors.
	UseGroundTruthSilhouettes bool
	// FrontEnd selects thinning (paper) or the GA stick-model fitter
	// (previous work).
	FrontEnd FrontEnd
	// UseROITracking extracts each frame only inside the tracker's
	// predicted region of interest — a large speed-up on big frames at
	// identical output (the ROI margin covers the moving-average window
	// and inter-frame motion).
	UseROITracking bool
	// AutoOrient detects the jump direction from the silhouette drift
	// and mirrors right-to-left clips so the classifier always sees a
	// left-to-right jump. The paper fixes the camera "from the left-hand
	// side of the jumper"; this option removes that constraint.
	AutoOrient bool
	// GA tunes the GA front end; zero fields take package ga defaults.
	GA ga.Config
	// Scope instruments the pipeline (per-stage latency histograms,
	// health counters, span tracing — see internal/obs and DESIGN.md §9).
	// nil (the default) disables all instrumentation at zero cost and
	// leaves outputs bit-identical.
	Scope *obs.Scope
	// DisableFrameScratch turns off the per-worker frame arena, making
	// every Analyze* call allocate fresh graph/key-point/skeleton storage
	// exactly as the pre-arena pipeline did. Outputs are bit-identical
	// either way (the golden tests pin this); the flag exists for that
	// comparison and for callers that need FrameAnalysis products to
	// outlive the next frame — see the FrameAnalysis ownership note.
	DisableFrameScratch bool
}

// Option mutates Options.
type Option func(*Options)

// WithPartitions sets the feature-encoding area count.
func WithPartitions(n int) Option { return func(o *Options) { o.Partitions = n } }

// WithRings enables the radial-feature extension with n distance bands.
func WithRings(n int) Option { return func(o *Options) { o.Rings = n } }

// WithPruneLen sets the noisy-branch pruning threshold.
func WithPruneLen(n int) Option { return func(o *Options) { o.PruneLen = n } }

// WithThinning selects the thinning algorithm.
func WithThinning(a thinning.Algorithm) Option { return func(o *Options) { o.Thinning = a } }

// WithExtractorOptions forwards options to the object extractor.
func WithExtractorOptions(opts ...extract.Option) Option {
	return func(o *Options) { o.Extractor = append(o.Extractor, opts...) }
}

// WithClassifierConfig replaces the DBN configuration.
func WithClassifierConfig(cfg dbn.Config) Option {
	return func(o *Options) { o.Classifier = &cfg }
}

// WithGroundTruthSilhouettes toggles the extraction-bypass ablation.
func WithGroundTruthSilhouettes(v bool) Option {
	return func(o *Options) { o.UseGroundTruthSilhouettes = v }
}

// WithFrontEnd selects the skeleton front end (thinning or GA).
func WithFrontEnd(fe FrontEnd) Option { return func(o *Options) { o.FrontEnd = fe } }

// WithAutoOrient toggles automatic jump-direction normalisation.
func WithAutoOrient(v bool) Option { return func(o *Options) { o.AutoOrient = v } }

// WithROITracking toggles tracker-guided region-of-interest extraction.
func WithROITracking(v bool) Option { return func(o *Options) { o.UseROITracking = v } }

// WithGAConfig tunes the GA front end.
func WithGAConfig(cfg ga.Config) Option { return func(o *Options) { o.GA = cfg } }

// WithObservability attaches an observability scope (see internal/obs):
// stage spans, health counters and — through the scope's registry —
// expvar/JSON metric export. A nil scope is valid and means "off".
func WithObservability(sc *obs.Scope) Option { return func(o *Options) { o.Scope = sc } }

// WithFrameScratch toggles the per-worker frame arena (default on). Pass
// false to restore the pre-arena allocate-per-frame behaviour, in which
// FrameAnalysis products stay valid indefinitely.
func WithFrameScratch(enabled bool) Option {
	return func(o *Options) { o.DisableFrameScratch = !enabled }
}

// FrameAnalysis is everything the vision front end derives from a frame.
//
// Ownership: with the frame arena enabled (the default), Silhouette,
// Skeleton, Graph and the slices reachable from them live in per-System
// reusable storage and are valid only until the NEXT Analyze*/Classify*/
// Train* call on the same System (or on the Engine worker that produced
// them). Copy what must outlive the next frame, or build the System with
// WithFrameScratch(false). KeyPoints and Encoding are self-contained
// values and always safe to retain.
type FrameAnalysis struct {
	// Silhouette is the extracted (or ground-truth) figure mask.
	Silhouette *imaging.Binary
	// Skeleton is the cleaned skeleton rasterised back to an image.
	Skeleton *imaging.Binary
	// Graph is the pruned skeleton graph.
	Graph *skelgraph.Graph
	// KeyPoints are the located body key points; valid only when
	// KeyPointsOK.
	KeyPoints keypoint.KeyPoints
	// KeyPointsOK reports whether key-point extraction succeeded.
	KeyPointsOK bool
	// Encoding is the feature vector (all-zero areas when key points
	// failed, which the classifier treats as an unrecognisable frame).
	Encoding keypoint.Encoding
}

// System is the full paper pipeline: extraction → skeleton → key points →
// DBN classification → scoring.
type System struct {
	opts       Options
	extractor  *extract.Extractor
	classifier *dbn.Classifier

	// scratch is the per-System frame arena (nil when disabled). A System
	// analyses one frame at a time — the Engine pools whole Systems — so
	// a single arena per System is race-free by construction.
	scratch *frameScratch
}

// frameScratch bundles the per-worker arenas of the frame hot path:
// the skeleton-graph arena, the key-point arena, the reused skeleton
// rasterisation image, and the previous frame's extractor-owned
// silhouette awaiting return to the imaging pool.
type frameScratch struct {
	graph    *skelgraph.Scratch
	kp       *keypoint.Scratch
	skeleton *imaging.Binary
	prevSil  *imaging.Binary
}

// newFrameScratch acquires the arenas. They stay with the System for its
// lifetime; a System has no Close, so they are recycled by the GC rather
// than returned to the arena pools.
//slj:hotpath
func newFrameScratch() *frameScratch {
	//slj:pool-escapes the arenas live for the owning System's lifetime
	return &frameScratch{graph: skelgraph.GetScratch(), kp: keypoint.GetScratch()} //slj:alloc-ok one-time arena acquisition per System, not per frame
}

// skeletonInto returns the reused w×h rasterisation target, zeroed.
//slj:hotpath
func (fs *frameScratch) skeletonInto(w, h int) *imaging.Binary {
	if fs.skeleton == nil {
		fs.skeleton = imaging.NewBinary(w, h)
	} else {
		fs.skeleton.Reset(w, h)
	}
	return fs.skeleton
}

// retire returns the previous frame's extractor-produced silhouette to
// the imaging pool and records sil as the new outstanding one. Only
// extractor-owned silhouettes may pass through here — never dataset-owned
// ground-truth masks.
//slj:hotpath
func (fs *frameScratch) retire(sil *imaging.Binary) {
	if fs.prevSil != nil {
		imaging.PutBinary(fs.prevSil)
	}
	fs.prevSil = sil
}

// NewSystem builds a system with the paper's defaults, modified by opts.
func NewSystem(opts ...Option) (*System, error) {
	o := Options{
		Partitions: keypoint.DefaultPartitions,
		PruneLen:   skelgraph.DefaultPruneLen,
		Thinning:   thinning.ZhangSuen,
		FrontEnd:   FrontEndThinning,
	}
	for _, fn := range opts {
		fn(&o)
	}
	ex, err := extract.NewExtractor(o.Extractor...)
	if err != nil {
		return nil, fmt.Errorf("slj: %w", err)
	}
	ex.SetScope(o.Scope)
	if reg := o.Scope.Registry(); reg != nil {
		// Bridge the imaging buffer-pool counters (package globals — the
		// pool itself is a global) into this scope's registry as pull
		// metrics, read at snapshot time.
		reg.RegisterFunc("imaging.pool.hits", func() int64 { h, _, _ := imaging.PoolCounters(); return h })
		reg.RegisterFunc("imaging.pool.misses", func() int64 { _, m, _ := imaging.PoolCounters(); return m })
		reg.RegisterFunc("imaging.pool.double_puts", func() int64 { _, _, d := imaging.PoolCounters(); return d })
		reg.RegisterFunc("imaging.pool.balance", imaging.PoolBalance)
	}
	cfg := dbn.DefaultConfig()
	if o.Classifier != nil {
		cfg = *o.Classifier
	}
	cfg.Partitions = o.Partitions
	cfg.Rings = o.Rings
	clf, err := dbn.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("slj: %w", err)
	}
	sys := &System{opts: o, extractor: ex, classifier: clf}
	if !o.DisableFrameScratch {
		sys.scratch = newFrameScratch()
	}
	return sys, nil
}

// Classifier exposes the underlying DBN bank (read-only use).
func (s *System) Classifier() *dbn.Classifier { return s.classifier }

// SetBackground installs the clean backdrop frame for extraction.
func (s *System) SetBackground(bg *imaging.RGB) { s.extractor.SetBackground(bg) }

// AnalyzeSilhouette runs the configured skeleton front end (Section 3 +
// feature encoding, or the GA stick-model fit) on an already-extracted
// silhouette.
//slj:hotpath
func (s *System) AnalyzeSilhouette(sil *imaging.Binary) FrameAnalysis {
	fa := FrameAnalysis{
		Silhouette: sil,
		Encoding:   keypoint.Encoding{Partitions: s.opts.Partitions, Rings: s.opts.Rings},
	}
	if s.opts.FrontEnd == FrontEndGA {
		return s.analyzeGA(fa, sil) //slj:alloc-ok GA front end is opt-in and outside the zero-alloc contract (DESIGN.md §11 covers the skeleton path)
	}
	sc := s.opts.Scope
	sc.FrameDone()
	// Whole-front-end frame latency (the stage.frame.ns histogram feeds
	// the frame_p99 SLO); the per-stage spans below nest inside it.
	fsp := sc.Start(obs.StageFrame)
	defer fsp.End()
	// The raw thinning result is only an intermediate: once the graph is
	// built, the reported skeleton is re-rasterised from the graph. Run it
	// through the imaging buffer pool so per-frame analysis does not
	// allocate a fresh image per frame. On the error path the buffer
	// escapes into fa.Skeleton and is simply never returned to the pool.
	sp := sc.Start(obs.StageThin)
	//slj:pool-escapes ThinIntoCounted returns dst: skel IS the pooled buffer, Put below
	skel, passes := thinning.ThinIntoCounted(imaging.GetBinary(sil.W, sil.H), sil, s.opts.Thinning)
	sp.End()
	sc.ThinPasses(passes)
	sp = sc.Start(obs.StageGraph)
	var g *skelgraph.Graph
	var err error
	if s.scratch != nil {
		g, err = skelgraph.BuildScratch(skel, s.scratch.graph)
	} else {
		g, err = skelgraph.Build(skel)
	}
	if err != nil {
		sp.End()
		sc.GraphFail()
		fa.Skeleton = skel
		return fa
	}
	imaging.PutBinary(skel)
	sc.Pruned(g.Prune(s.opts.PruneLen))
	sp.End()
	sc.GraphStats(g.Stats.LoopsCut, g.Stats.JunctionsRemoved)
	fa.Graph = g
	if s.scratch != nil {
		fa.Skeleton = g.ToBinaryInto(s.scratch.skeletonInto(g.W, g.H))
	} else {
		fa.Skeleton = g.ToBinary()
	}
	sp = sc.Start(obs.StageKeyPoint)
	var kp keypoint.KeyPoints
	if s.scratch != nil {
		kp, err = keypoint.FromGraphScratch(g, s.scratch.kp)
	} else {
		kp, err = keypoint.FromGraph(g)
	}
	if err != nil {
		sp.End()
		sc.KeyPointMiss(errors.Is(err, keypoint.ErrDegenerate), errors.Is(err, keypoint.ErrNoTorso))
		return fa
	}
	enc, err := keypoint.EncodeRadial(kp, s.opts.Partitions, s.opts.Rings)
	sp.End()
	if err != nil {
		sc.KeyPointMiss(false, false)
		return fa
	}
	if kp.HandAbsent() {
		sc.HandAbsent()
	}
	fa.KeyPoints = kp
	fa.KeyPointsOK = true
	fa.Encoding = enc
	return fa
}

// observeClip relabels the system's scope (and its extractor's) with the
// clip name for the duration of one clip; the returned func restores the
// parent scope. A System processes one clip at a time — the Engine pools
// whole Systems rather than sharing one — so the swap is race-free: it
// happens before any pipelined goroutines start and is undone after they
// have all joined.
func (s *System) observeClip(name string) func() {
	sc := s.opts.Scope
	if sc == nil {
		return func() {}
	}
	labelled := sc.WithClip(name)
	s.opts.Scope = labelled
	s.extractor.SetScope(labelled)
	return func() {
		s.opts.Scope = sc
		s.extractor.SetScope(sc)
	}
}

// analyzeGA fits the stick model to the silhouette and derives key
// points from it (the previous-work pipeline).
func (s *System) analyzeGA(fa FrameAnalysis, sil *imaging.Binary) FrameAnalysis {
	fit, err := ga.Fit(sil, s.opts.GA)
	if err != nil {
		fa.Skeleton = imaging.NewBinary(sil.W, sil.H)
		return fa
	}
	kp := fit.KeyPoints(pose.DefaultProportions())
	enc, err := keypoint.EncodeRadial(kp, s.opts.Partitions, s.opts.Rings)
	if err != nil {
		fa.Skeleton = imaging.NewBinary(sil.W, sil.H)
		return fa
	}
	// Rasterise the fitted stick model as the "skeleton" product.
	skel := imaging.NewBinary(sil.W, sil.H)
	sk := fit.Best.Skeleton(pose.DefaultProportions())
	for _, seg := range [][2]imaging.Pointf{
		{sk.Hip, sk.Shoulder}, {sk.Shoulder, sk.Head}, {sk.Shoulder, sk.Elbow},
		{sk.Elbow, sk.Hand}, {sk.Hip, sk.Knee}, {sk.Knee, sk.Ankle}, {sk.Ankle, sk.Toe},
	} {
		imaging.DrawLine(skel, seg[0].Round(), seg[1].Round())
	}
	fa.Skeleton = skel
	fa.KeyPoints = kp
	fa.KeyPointsOK = true
	fa.Encoding = enc
	return fa
}

// AnalyzeFrame extracts the silhouette from an RGB frame (requires
// SetBackground first) and runs the skeleton front end on it.
//slj:hotpath
func (s *System) AnalyzeFrame(frame *imaging.RGB) (FrameAnalysis, error) {
	sil, err := s.extractor.Extract(frame)
	if err != nil {
		return FrameAnalysis{}, fmt.Errorf("slj: %w", err) //slj:alloc-ok cold error path, frame is rejected anyway
	}
	if s.scratch != nil {
		// The silhouette must stay valid past the return (it is the
		// FrameAnalysis product), so it goes back to the pool one frame
		// later, when the next AnalyzeFrame supersedes it.
		s.scratch.retire(sil)
	}
	return s.AnalyzeSilhouette(sil), nil
}

// analyzeClip runs the front end over every frame of a clip, honouring
// the ground-truth-silhouette ablation and, when AutoOrient is on, the
// jump-direction normalisation.
func (s *System) analyzeClip(lc dataset.LabeledClip) ([]FrameAnalysis, error) {
	sils, err := s.clipSilhouettes(lc)
	if err != nil {
		return nil, err
	}
	// Silhouettes produced by the extractor ride the imaging pool; with the
	// arena enabled they are returned once the clip's analyses are done.
	// Ground-truth silhouettes are dataset-owned and must never be Put —
	// but a FlipH copy is ours regardless of where its source came from.
	owned := s.scratch != nil && !s.opts.UseGroundTruthSilhouettes
	if s.opts.AutoOrient && jumpGoesLeft(sils) {
		for i, sil := range sils {
			sils[i] = sil.FlipH()
			if owned {
				imaging.PutBinary(sil)
			}
		}
		owned = s.scratch != nil
	}
	out := make([]FrameAnalysis, 0, len(sils))
	for _, sil := range sils {
		out = append(out, s.AnalyzeSilhouette(sil))
	}
	if owned {
		for _, sil := range sils {
			imaging.PutBinary(sil)
		}
	}
	return out, nil
}

// clipFrame returns frame i of a clip. Materialised clips index their
// Frames slice; streamed clips (a non-nil Reader) decode the frame from
// disk on demand, so a clip's pixel data is resident only while the
// pipeline is consuming it.
func clipFrame(lc dataset.LabeledClip, i int) (synth.Frame, error) {
	if lc.Reader == nil {
		return lc.Clip.Frames[i], nil
	}
	fr, err := lc.Reader.ReadFrame(i)
	if err != nil {
		return synth.Frame{}, fmt.Errorf("slj: clip %s frame %d: %w", lc.Name, i, err)
	}
	return fr, nil
}

// silhouetteSource prepares per-frame silhouette production for a clip:
// it installs the clip background (when extracting) and returns a closure
// yielding frame i's silhouette. The closure is stateful — ROI tracking
// feeds each silhouette back into the tracker — so it must be called with
// i = 0, 1, 2, ... in order, from a single goroutine. Both the batch path
// (clipSilhouettes) and the Engine's pipelined path drive it. Streamed
// clips decode each frame as it is requested, overlapping disk I/O with
// the downstream analysis stages.
func (s *System) silhouetteSource(lc dataset.LabeledClip) (func(i int) (*imaging.Binary, error), error) {
	if !s.opts.UseGroundTruthSilhouettes {
		if lc.Clip.Background == nil {
			err := fmt.Errorf("slj: clip %s has no background frame: %w", lc.Name, ErrNoBackground)
			s.opts.Scope.RecordError(obs.ErrClassIO, err)
			return nil, err
		}
		s.SetBackground(lc.Clip.Background)
	}
	// roiMargin pads the tracker window: it must absorb the moving-average
	// window, inter-frame motion AND single-frame bounding-box growth
	// (a crouch extending to full height adds ~35 px at one end).
	const roiMargin = 48
	var tr *track.Tracker
	if s.opts.UseROITracking && !s.opts.UseGroundTruthSilhouettes {
		tr = track.DefaultTracker()
	}
	return func(i int) (*imaging.Binary, error) {
		fr, err := clipFrame(lc, i)
		if err != nil {
			s.opts.Scope.RecordError(errClassOf(err), err)
			return nil, err
		}
		if s.opts.UseGroundTruthSilhouettes {
			if fr.Silhouette == nil {
				err := fmt.Errorf("slj: clip %s frame %d has no ground-truth silhouette", lc.Name, i)
				s.opts.Scope.RecordError(obs.ErrClassIO, err)
				return nil, err
			}
			return fr.Silhouette, nil
		}
		var sil *imaging.Binary
		if tr != nil {
			if roi, roiErr := tr.ROI(roiMargin, fr.Image.W, fr.Image.H); roiErr == nil {
				sil, err = s.extractor.ExtractInROI(fr.Image, roi)
			} else {
				sil, err = s.extractor.Extract(fr.Image) // first frame: full scan
			}
			if err == nil {
				tr.Step(sil)
			}
		} else {
			sil, err = s.extractor.Extract(fr.Image)
		}
		if err != nil {
			err = fmt.Errorf("slj: clip %s frame %d: %w", lc.Name, i, err)
			s.opts.Scope.RecordError(errClassOf(err), err)
			return nil, err
		}
		return sil, nil
	}, nil
}

// clipSilhouettes extracts (or fetches) the per-frame silhouettes.
func (s *System) clipSilhouettes(lc dataset.LabeledClip) ([]*imaging.Binary, error) {
	src, err := s.silhouetteSource(lc)
	if err != nil {
		return nil, err
	}
	out := make([]*imaging.Binary, 0, len(lc.Clip.Frames))
	for i := range lc.Clip.Frames {
		sil, err := src(i)
		if err != nil {
			// Same release rule as analyzeClip's success path: silhouettes
			// already extracted for earlier frames are pool-owned and must
			// not leak just because a later frame failed to decode.
			if s.scratch != nil && !s.opts.UseGroundTruthSilhouettes {
				for _, prev := range out {
					imaging.PutBinary(prev)
				}
			}
			return nil, err
		}
		out = append(out, sil)
	}
	return out, nil
}

// jumpGoesLeft reports whether the silhouette centroid drifts toward -X
// over the clip (a right-to-left jump).
func jumpGoesLeft(sils []*imaging.Binary) bool {
	first, last := -1.0, -1.0
	for _, sil := range sils {
		b := sil.ForegroundBounds()
		if b.Empty() {
			continue
		}
		cx := float64(b.Min.X+b.Max.X) / 2
		if first < 0 {
			first = cx
		}
		last = cx
	}
	return first >= 0 && last < first
}

// TrainClip feeds one labelled clip through the front end and into the
// DBN bank (the paper's training phase).
func (s *System) TrainClip(lc dataset.LabeledClip) error {
	defer s.observeClip(lc.Name)()
	fas, err := s.analyzeClip(lc)
	if err != nil {
		return err
	}
	frames := make([]dbn.LabeledFrame, len(fas))
	for i, fa := range fas {
		frames[i] = dbn.LabeledFrame{Label: lc.Clip.Frames[i].Label, Enc: fa.Encoding}
	}
	if err := s.classifier.TrainSequence(frames); err != nil {
		return fmt.Errorf("slj: training on %s: %w", lc.Name, err)
	}
	return nil
}

// Train trains on every clip. It is a thin adapter over TrainSource.
func (s *System) Train(clips []dataset.LabeledClip) error {
	if len(clips) == 0 {
		return errors.New("slj: no training clips")
	}
	return s.TrainSource(dataset.Materialized(clips))
}

// TrainSource trains on every clip the source yields, one clip at a
// time in source order — only the clip being analysed is resident. The
// source is consumed to io.EOF but not closed.
func (s *System) TrainSource(src dataset.ClipSource) error {
	n := 0
	for {
		lc, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("slj: %w", err)
		}
		if err := s.TrainClip(lc); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return errors.New("slj: no training clips")
	}
	return nil
}

// ClassifyClip decodes one clip into per-frame results.
func (s *System) ClassifyClip(lc dataset.LabeledClip) ([]dbn.Result, error) {
	defer s.observeClip(lc.Name)()
	fas, err := s.analyzeClip(lc)
	if err != nil {
		return nil, err
	}
	encs := make([]keypoint.Encoding, len(fas))
	for i, fa := range fas {
		encs[i] = fa.Encoding
	}
	res, err := s.classifier.ClassifySequenceScoped(encs, s.opts.Scope)
	if err != nil {
		return nil, fmt.Errorf("slj: classifying %s: %w", lc.Name, err)
	}
	return res, nil
}

// ClassifyClipViterbi decodes a clip jointly with the Viterbi extension
// (see internal/dbn): the most probable pose sequence under the learned
// pose-transition model, which never emits Unknown and repairs isolated
// bad frames. This is the "refinement on the DBN" the paper's conclusion
// anticipates; experiment EXT3 compares it against the paper's greedy
// decoder.
func (s *System) ClassifyClipViterbi(lc dataset.LabeledClip) ([]pose.Pose, error) {
	fas, err := s.analyzeClip(lc)
	if err != nil {
		return nil, err
	}
	encs := make([]keypoint.Encoding, len(fas))
	for i, fa := range fas {
		encs[i] = fa.Encoding
	}
	seq, err := s.classifier.DecodeViterbi(encs)
	if err != nil {
		return nil, fmt.Errorf("slj: viterbi on %s: %w", lc.Name, err)
	}
	return seq, nil
}

// MeasureJump tracks the jumper through the clip and measures the jump
// distance (pixels and body heights) between the take-off and landing
// foot positions. The flight window is derived from the tracked foot
// height (classifier-independent), so no training is required.
func (s *System) MeasureJump(lc dataset.LabeledClip) (track.JumpMeasurement, error) {
	if !s.opts.UseGroundTruthSilhouettes {
		if lc.Clip.Background == nil {
			return track.JumpMeasurement{}, fmt.Errorf("slj: clip %s has no background frame: %w", lc.Name, ErrNoBackground)
		}
		s.SetBackground(lc.Clip.Background)
	}
	tr := track.DefaultTracker()
	for i := range lc.Clip.Frames {
		fr, err := clipFrame(lc, i)
		if err != nil {
			return track.JumpMeasurement{}, err
		}
		var sil *imaging.Binary
		if s.opts.UseGroundTruthSilhouettes {
			sil = fr.Silhouette
		} else {
			if sil, err = s.extractor.Extract(fr.Image); err != nil {
				return track.JumpMeasurement{}, fmt.Errorf("slj: frame %d: %w", i, err)
			}
		}
		tr.Step(sil)
	}
	m, err := tr.MeasureJump(tr.AirborneFlags(track.DefaultAirborneMargin))
	if err != nil {
		return track.JumpMeasurement{}, fmt.Errorf("slj: %w", err)
	}
	return m, nil
}

// Poses extracts the decided pose sequence from classification results.
func Poses(results []dbn.Result) []pose.Pose {
	out := make([]pose.Pose, len(results))
	for i, r := range results {
		out[i] = r.Pose
	}
	return out
}

// Evaluate classifies every test clip and scores it against ground truth,
// reproducing the paper's Section 5 table. It is a thin adapter over
// EvaluateSource.
func (s *System) Evaluate(clips []dataset.LabeledClip) (stats.Summary, *stats.Confusion, error) {
	return s.EvaluateSource(dataset.Materialized(clips))
}

// EvaluateSource classifies every clip the source yields and scores it
// against ground truth, one clip at a time in source order. The source
// is consumed to io.EOF but not closed.
func (s *System) EvaluateSource(src dataset.ClipSource) (stats.Summary, *stats.Confusion, error) {
	var sum stats.Summary
	var conf stats.Confusion
	for {
		lc, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats.Summary{}, nil, fmt.Errorf("slj: %w", err)
		}
		results, err := s.ClassifyClip(lc)
		if err != nil {
			return stats.Summary{}, nil, err
		}
		pred := Poses(results)
		truth := lc.Clip.Labels()
		cr, err := stats.EvaluateClip(lc.Name, truth, pred)
		if err != nil {
			return stats.Summary{}, nil, fmt.Errorf("slj: %w", err)
		}
		sum.Add(cr)
		for i := range truth {
			conf.Add(truth[i], pred[i])
		}
	}
	return sum, &conf, nil
}

// Coach classifies a clip and produces the coaching report — the system's
// end-user purpose ("advices to the jumper can be given").
func (s *System) Coach(lc dataset.LabeledClip) (scoring.Report, []pose.Pose, error) {
	results, err := s.ClassifyClip(lc)
	if err != nil {
		return scoring.Report{}, nil, err
	}
	seq := Poses(results)
	return scoring.Evaluate(seq), seq, nil
}

// SaveModel serialises the trained classifier bank.
func (s *System) SaveModel(w io.Writer) error { return s.classifier.Save(w) }

// LoadModel replaces the classifier with one previously saved by
// SaveModel, synchronising the front end's partition count to the model.
func (s *System) LoadModel(r io.Reader) error {
	clf, err := dbn.Load(r)
	if err != nil {
		return fmt.Errorf("slj: %w", err)
	}
	s.classifier = clf
	s.opts.Partitions = clf.Config().Partitions
	s.opts.Rings = clf.Config().Rings
	return nil
}

// GenerateDataset builds the paper-shaped synthetic corpus (12 train and
// 3 test clips by default).
func GenerateDataset(opts dataset.GenOptions) (*dataset.Dataset, error) {
	return dataset.Generate(opts)
}

// DefaultClassifierConfig returns the paper-default DBN configuration,
// for callers that want to tweak a field before WithClassifierConfig.
func DefaultClassifierConfig() dbn.Config { return dbn.DefaultConfig() }

// RenderAnalysis paints the analysis products over a copy of the frame:
// the silhouette boundary in green, the skeleton in yellow, the key
// points as red crosses and the waist as a blue cross. Intended for
// visual inspection (sljcoach -dump) and debugging.
func RenderAnalysis(frame *imaging.RGB, fa FrameAnalysis) *imaging.RGB {
	out := frame.Clone()
	if fa.Silhouette != nil {
		boundary := imaging.NewBinary(fa.Silhouette.W, fa.Silhouette.H)
		eroded := imaging.Erode(fa.Silhouette)
		for i := range boundary.Pix {
			if fa.Silhouette.Pix[i] == 1 && eroded.Pix[i] == 0 {
				boundary.Pix[i] = 1
			}
		}
		_ = imaging.PaintMask(out, boundary, 60, 220, 60)
	}
	if fa.Skeleton != nil && fa.Skeleton.W == out.W && fa.Skeleton.H == out.H {
		_ = imaging.PaintMask(out, fa.Skeleton, 240, 220, 60)
	}
	cross := func(p imaging.Point, r, g, b uint8) {
		for d := -2; d <= 2; d++ {
			if out.In(p.X+d, p.Y) {
				out.Set(p.X+d, p.Y, r, g, b)
			}
			if out.In(p.X, p.Y+d) {
				out.Set(p.X, p.Y+d, r, g, b)
			}
		}
	}
	if fa.KeyPointsOK {
		for _, part := range keypoint.Parts() {
			if pos, ok := fa.KeyPoints.At(part); ok {
				cross(pos, 230, 60, 60)
			}
		}
		cross(fa.KeyPoints.Waist, 70, 90, 230)
	}
	return out
}

// GenerateClipFromSpec renders one clip from an explicit spec (exposed
// for tests and tools that need mirrored, distractor-laden or otherwise
// customised clips).
func GenerateClipFromSpec(spec synth.Spec) (*synth.Clip, error) { return synth.Generate(spec) }

// DefaultSpec returns the standard clip-generation spec for a seed.
func DefaultSpec(seed int64) synth.Spec { return synth.DefaultSpec(seed) }

// DatasetOptions returns the default generation options for a seed.
func DatasetOptions(seed int64) dataset.GenOptions {
	return dataset.DefaultGenOptions(seed)
}
