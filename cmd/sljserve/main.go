// Command sljserve exposes the classification pipeline as an HTTP JSON
// service: POST /rpc with {"method": ..., "params": ...} envelopes for
// classify-clip, score and evaluate-corpus, with the full /debug
// observability surface (metrics, health, timeseries, errors, pprof)
// mounted on the same port. Admission control sheds load with 503 once
// the worker budget is spent or the SLO health verdict degrades to
// failing, and SIGINT/SIGTERM drains in-flight requests before exit.
//
// Usage:
//
//	sljserve -data data/ [-addr :8080] [-workers 0]
//	sljserve -model model.gob -data data/
//
// Without -model the classifier is trained in-process on the dataset's
// training split. -data doubles as the request path root: a request's
// "dir" or "model" field resolves underneath it and may not escape.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljserve: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address (port 0 for ephemeral)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses using port 0)")
		data       = flag.String("data", "", "dataset directory written by sljgen; doubles as the request path root")
		model      = flag.String("model", "", "trained model from sljtrain (trains in-process from -data when empty)")
		workers    = flag.Int("workers", 0, "engine workers = total admission budget (0 or -1 all CPUs)")
		maxBody    = flag.Int64("max-body", serve.DefaultMaxBody, "request body cap in bytes")
		modelCache = flag.Int("model-cache", 4, "per-request model registry capacity (engines cached by content hash)")
		drain      = flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-shutdown bound for in-flight requests")
		sample     = flag.Duration("sample-interval", time.Second, "metrics sampling and health re-evaluation period")
		window     = flag.Int("sample-window", 300, "time-series ring capacity in samples")
		logPath    = flag.String("log", "", "structured JSONL event log: file path, or - for stderr (disabled when empty)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	)
	flag.Parse()
	if *data == "" && *model == "" {
		flag.Usage()
		os.Exit(2)
	}

	st, err := serve.NewStack(serve.StackConfig{
		SampleInterval: *sample,
		SampleWindow:   *window,
		LogPath:        *logPath,
		LogLevel:       *logLevel,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := []slj.Option{slj.WithObservability(st.Scope)}
	eng, err := slj.NewEngine(*workers, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		err = eng.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		src, err := dataset.OpenDir(filepath.Join(*data, "train"))
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.TrainSource(src); err != nil {
			log.Fatal(err)
		}
		log.Printf("trained in-process on %s/train", *data)
	}

	srv, err := serve.New(serve.Config{
		Engine:        eng,
		DataRoot:      *data,
		MaxBody:       *maxBody,
		ModelCacheCap: *modelCache,
		EngineOptions: opts,
		Obs:           st,
		DrainTimeout:  *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers %d)", srv.Addr(), eng.Workers())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("%s: draining (up to %s) and shutting down", got, *drain)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	log.Print("shutdown complete")
}
