// Command sljtop is a stdlib-only terminal dashboard for a running slj
// job: it polls the obs endpoints a binary exposes under -metrics and
// renders throughput, per-stage latency quantiles, worker-pool
// occupancy, and pipeline health counters with sparkline history.
//
// Usage:
//
//	sljtop -addr 127.0.0.1:6060            # live, refreshes every second
//	sljtop -addr 127.0.0.1:6060 -once      # one frame, plain text (CI)
//	sljtop -snapshot metrics_snapshot.json # offline, from -metrics-out
//
// Live mode reads /debug/metrics (totals) and /debug/timeseries (the
// sampler's ring buffers — enabled by default via -sample-interval on
// the instrumented binaries). Snapshot mode renders totals only.
// -connect-timeout keeps -once useful in scripts that race the job's
// start-up: sljtop retries until the endpoint answers or the timeout
// expires.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// pipelineOrder lists the stage.<name>.ns histograms in processing
// order; other histograms render after these, alphabetically.
var pipelineOrder = []string{
	"stage.detect.ns", "stage.smooth.ns", "stage.thin.ns",
	"stage.graph.ns", "stage.keypoint.ns", "stage.classify.ns",
	"stage.frame.ns",
}

// view is one fetched dashboard frame: the totals snapshot plus the
// optional subsystems (sampler series, health verdict, error journal)
// — each absent endpoint degrades its panel rather than failing.
type view struct {
	snap   obs.Snapshot
	ts     obs.TimeSeries
	health *obs.HealthSnapshot
	errs   *obs.JournalSnapshot
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljtop: ")

	var (
		addr     = flag.String("addr", "", "obs endpoint of the running job, host:port (the binary's -metrics address)")
		snapshot = flag.String("snapshot", "", "render a -metrics-out JSON snapshot instead of polling a live job")
		interval = flag.Duration("interval", time.Second, "refresh period in live mode")
		once     = flag.Bool("once", false, "render one frame without terminal control sequences and exit (for CI/scripts)")
		timeout  = flag.Duration("connect-timeout", 5*time.Second, "keep retrying the first fetch for this long before giving up")
	)
	flag.Parse()
	if (*addr == "") == (*snapshot == "") {
		fmt.Fprintln(os.Stderr, "sljtop: exactly one of -addr or -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}

	if *snapshot != "" {
		snap, err := readSnapshotFile(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(render(view{snap: snap}, *snapshot))
		return
	}

	client := &http.Client{Timeout: 5 * time.Second}
	v, err := fetchWithRetry(client, *addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if *once {
		fmt.Print(render(v, *addr))
		return
	}
	for {
		// Home the cursor and clear to end of screen; a full clear per
		// frame would flicker.
		fmt.Print("\033[H\033[2J" + render(v, *addr))
		time.Sleep(*interval)
		v, err = fetch(client, *addr)
		if err != nil {
			log.Fatal(err) // the job exited; its server is gone
		}
	}
}

// fetchWithRetry polls fetch until it succeeds or the timeout passes —
// the job being watched may still be compiling or binding its listener.
func fetchWithRetry(client *http.Client, addr string, timeout time.Duration) (view, error) {
	deadline := time.Now().Add(timeout)
	for {
		v, err := fetch(client, addr)
		if err == nil {
			return v, nil
		}
		if time.Now().After(deadline) {
			return view{}, fmt.Errorf("no obs endpoint at %s after %s: %w", addr, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetch reads the totals snapshot and, when mounted, the sampler rings,
// the health verdict, and the error journal. Each optional endpoint
// that is missing (its subsystem disabled) degrades its panel rather
// than failing. /debug/health answers 503 when the job is failing its
// SLOs — that response still carries the snapshot we want to render, so
// it is accepted alongside 200.
func fetch(client *http.Client, addr string) (view, error) {
	var v view
	if err := getJSON(client, "http://"+addr+"/debug/metrics", &v.snap, http.StatusOK); err != nil {
		return view{}, err
	}
	if err := getJSON(client, "http://"+addr+"/debug/timeseries", &v.ts, http.StatusOK); err != nil {
		v.ts = obs.TimeSeries{}
	}
	var hs obs.HealthSnapshot
	if err := getJSON(client, "http://"+addr+"/debug/health", &hs, http.StatusOK, http.StatusServiceUnavailable); err == nil {
		v.health = &hs
	}
	var js obs.JournalSnapshot
	if err := getJSON(client, "http://"+addr+"/debug/errors", &js, http.StatusOK); err == nil {
		v.errs = &js
	}
	return v, nil
}

func getJSON(client *http.Client, url string, into any, okStatuses ...int) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	ok := false
	for _, s := range okStatuses {
		if resp.StatusCode == s {
			ok = true
		}
	}
	if !ok {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	return nil
}

func readSnapshotFile(path string) (obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.Snapshot{}, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("parsing snapshot %s: %w", path, err)
	}
	return snap, nil
}

// sparkline renders points as 8-level block characters, scaled to the
// series' own min..max so shape survives any magnitude.
func sparkline(points []float64, width int) string {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	if len(points) == 0 {
		return ""
	}
	lo, hi := points[0], points[0]
	for _, p := range points {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range points {
		idx := 0
		if hi > lo {
			idx = int((p - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// render lays out one dashboard frame from the fetched view.
func render(v view, source string) string {
	snap, ts := v.snap, v.ts
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	gauges := map[string]int64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	hists := map[string]obs.HistogramSnapshot{}
	var histNames []string
	for _, h := range snap.Histograms {
		hists[h.Name] = h.HistogramSnapshot
		histNames = append(histNames, h.Name)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "slj · %s · %s\n\n", source, time.Now().Format("15:04:05"))

	// Throughput: current rate from the sampler when present, lifetime
	// totals always.
	fps, haveFPS := ts.Latest("derived.frames_per_s")
	cps, _ := ts.Latest("derived.clips_per_s")
	fmt.Fprintf(&b, "throughput  frames %d", counters["pipeline.frames"])
	if haveFPS {
		fmt.Fprintf(&b, " @ %.1f/s %s", fps, sparkSeries(ts, "derived.frames_per_s"))
	}
	fmt.Fprintf(&b, "\n            clips  %d", counters["parallel.items"])
	if haveFPS {
		fmt.Fprintf(&b, " @ %.2f/s %s", cps, sparkSeries(ts, "derived.clips_per_s"))
	}
	b.WriteString("\n\n")

	// Per-stage latency: totals quantiles (always available) plus the
	// windowed p50 sparkline when the sampler is on.
	fmt.Fprintf(&b, "latency     %-22s %10s %9s %9s %9s  %s\n", "histogram", "count", "p50", "p95", "p99", "p50 history")
	for _, name := range orderedHistograms(histNames) {
		h := hists[name]
		fmt.Fprintf(&b, "            %-22s %10d %9s %9s %9s  %s\n",
			name, h.Count,
			obs.FormatNS(h.Quantile(0.50)), obs.FormatNS(h.Quantile(0.95)), obs.FormatNS(h.Quantile(0.99)),
			sparkSeries(ts, name+".p50"))
	}
	b.WriteString("\n")

	// Worker pool / streaming occupancy.
	fmt.Fprintf(&b, "workers     pool_free %d · clips_in_flight %d · workers_max %d · queue_max %d · stall %s\n",
		gauges["engine.pool_free"], gauges["engine.clips_in_flight"],
		counters["parallel.workers_max"], counters["parallel.queue_depth_max"],
		obs.FormatNS(float64(counters["parallel.stall_ns"])))
	hits, misses := counters["imaging.pool.hits"], counters["imaging.pool.misses"]
	if hits+misses > 0 {
		fmt.Fprintf(&b, "pool        hit rate %.1f%% (%d hits, %d misses, %d double puts) %s\n",
			100*float64(hits)/float64(hits+misses), hits, misses, counters["imaging.pool.double_puts"],
			sparkSeries(ts, "derived.pool_hit_rate"))
	}
	b.WriteString("\n")

	// Health: decisions and front-end fallbacks.
	decided, unknown := int64(0), int64(0)
	for name, v := range counters {
		if strings.HasPrefix(name, "pipeline.decided.") {
			decided += v
		}
		if strings.HasPrefix(name, "pipeline.unknown.") {
			unknown += v
		}
	}
	unknownPct := 0.0
	if decided > 0 {
		unknownPct = 100 * float64(unknown) / float64(decided)
	}
	fmt.Fprintf(&b, "health      decided %d · unknown %d (%.1f%%) · graph_fail %d · keypoint_miss %d (degenerate %d, no_torso %d) · hand_absent %d\n",
		decided, unknown, unknownPct,
		counters["pipeline.graph_fail"], counters["pipeline.keypoint_miss"],
		counters["pipeline.keypoint_miss.degenerate"], counters["pipeline.keypoint_miss.no_torso"],
		counters["pipeline.hand_absent"])
	if v.health != nil {
		b.WriteString("\n")
		fmt.Fprintf(&b, "alerts      verdict %s", v.health.Verdict)
		if len(v.health.Reasons) > 0 {
			fmt.Fprintf(&b, " · %d breaching", len(v.health.Reasons))
		}
		b.WriteString("\n")
		for _, st := range v.health.SLOs {
			if st.Level == obs.SLOOK.String() {
				continue
			}
			// The breach reason embeds the correlating trace ID when the
			// SLO's error class has a journaled exemplar.
			fmt.Fprintf(&b, "  %-10s %-10s burn fast %.2f slow %.2f  %s\n",
				st.Level, st.Name, st.BurnFast, st.BurnSlow, st.Reason)
		}
	}

	if v.errs != nil && v.errs.Total > 0 {
		b.WriteString("\n")
		fmt.Fprintf(&b, "errors      %d journaled\n", v.errs.Total)
		for _, c := range v.errs.Classes {
			last := c.Exemplars[len(c.Exemplars)-1]
			fmt.Fprintf(&b, "  %-20s %6d  last %s clip=%s %s\n",
				c.Class, c.Count, last.Trace, orDash(last.Clip), last.Msg)
		}
	}

	if ts.Ticks > 0 {
		fmt.Fprintf(&b, "\nsampler     %d ticks @ %s, window %d\n",
			ts.Ticks, time.Duration(ts.IntervalNS), ts.Window)
	}
	return b.String()
}

// orDash substitutes "-" for an empty field so columns stay aligned.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// sparkSeries renders the named series' ring as a sparkline, or "" when
// the series is absent (sampling off).
func sparkSeries(ts obs.TimeSeries, name string) string {
	for _, s := range ts.Series {
		if s.Name == name {
			return sparkline(s.Points, 32)
		}
	}
	return ""
}

// orderedHistograms sorts histogram names pipeline-first: the six
// stage.* histograms in processing order, then everything else
// alphabetically.
func orderedHistograms(names []string) []string {
	rank := map[string]int{}
	for i, n := range pipelineOrder {
		rank[n] = i
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}
