package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// populatedRegistry builds a registry shaped like a real run.
func populatedRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("pipeline.frames").Add(650)
	reg.Counter("parallel.items").Add(10)
	reg.Counter("parallel.stall_ns").Add(1_000_000)
	reg.Counter("parallel.workers_max").Add(4)
	reg.Counter("pipeline.decided.stage3").Add(9)
	reg.Counter("pipeline.unknown.stage3").Add(1)
	reg.Counter("imaging.pool.hits").Add(640)
	reg.Counter("imaging.pool.misses").Add(10)
	reg.Gauge("engine.pool_free").Set(4)
	for _, st := range []string{"detect", "smooth", "thin", "graph", "keypoint", "classify"} {
		h := reg.Histogram("stage."+st+".ns", obs.LatencyBounds)
		for i := 0; i < 20; i++ {
			h.Observe(int64(50_000 + 1000*i))
		}
	}
	return reg
}

// TestOnceAgainstLiveEndpoint starts a real obs server with a sampler
// and checks that one fetch+render cycle — exactly what `sljtop -once`
// does — produces the stage table and throughput lines.
func TestOnceAgainstLiveEndpoint(t *testing.T) {
	reg := populatedRegistry()
	smp := obs.NewSampler(reg, time.Hour, 8) // ticked by hand below
	smp.Start()
	defer smp.Stop()
	smp.Tick()

	srv, err := obs.Serve("127.0.0.1:0", reg, smp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	v, err := fetchWithRetry(client, srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := render(v, srv.Addr())

	for _, want := range []string{
		"throughput", "frames 650", "clips  10",
		"stage.detect.ns", "stage.classify.ns",
		"workers", "pool_free 4",
		"hit rate 98.5%",
		"health", "decided 9", "unknown 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	// Stage rows follow pipeline order, not alphabetical order.
	if d, c := strings.Index(out, "stage.detect.ns"), strings.Index(out, "stage.classify.ns"); d > c {
		t.Error("detect renders after classify; stage table must follow pipeline order")
	}

	// The time series made it over the wire.
	if v.ts.Ticks < 1 {
		t.Errorf("timeseries ticks = %d, want >= 1", v.ts.Ticks)
	}
}

// TestAlertsPanelCarriesTraceID serves a degraded job — a journaled
// decode error breaching the decode_errors SLO — and checks the sljtop
// alert row and the errors row both show the journal's trace ID.
func TestAlertsPanelCarriesTraceID(t *testing.T) {
	reg := populatedRegistry()
	reg.Counter("dataset.clips_streamed").Add(10)
	journal := obs.NewJournal(reg, 64)
	journal.Record(obs.ErrClassDecode, "t000042", "clip-bad", -1, "background: torn header")

	smp := obs.NewSampler(reg, time.Hour, 8)
	smp.Start()
	defer smp.Stop()
	health, err := obs.NewHealthEvaluator(reg, smp, journal, obs.DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	smp.SetOnTick(health.Eval)
	smp.Tick()

	srv, err := obs.ServeWith("127.0.0.1:0", obs.ServeConfig{
		Registry: reg, Sampler: smp, Journal: journal, Health: health,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	v, err := fetchWithRetry(client, srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.health == nil {
		t.Fatal("no health snapshot fetched")
	}
	if v.errs == nil {
		t.Fatal("no error journal fetched")
	}
	out := render(v, srv.Addr())

	if !strings.Contains(out, "alerts") || !strings.Contains(out, "verdict degraded") {
		t.Errorf("render missing degraded alerts panel:\n%s", out)
	}
	if !strings.Contains(out, "decode_errors") {
		t.Errorf("render missing decode_errors alert row:\n%s", out)
	}
	// The same trace ID correlates the alert row and the errors row.
	if got := strings.Count(out, "t000042"); got < 2 {
		t.Errorf("trace t000042 appears %d times, want >= 2 (alert row + errors row):\n%s", got, out)
	}
	if !strings.Contains(out, "errors") || !strings.Contains(out, "1 journaled") {
		t.Errorf("render missing errors panel:\n%s", out)
	}
}

// TestSnapshotMode renders an offline -metrics-out file with no server.
func TestSnapshotMode(t *testing.T) {
	reg := populatedRegistry()
	path := filepath.Join(t.TempDir(), "metrics_snapshot.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := readSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := render(view{snap: snap}, path)
	for _, want := range []string{"frames 650", "stage.thin.ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot render missing %q:\n%s", want, out)
		}
	}
	// No sampler: no sparkline rows, no trailing sampler line.
	if strings.Contains(out, "sampler") {
		t.Errorf("snapshot render shows sampler line:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline = %q, want \"\"", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want bottom blocks", got)
	}
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 10)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q, want full ramp", got)
	}
	// Width truncation keeps the newest points.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("truncated sparkline = %q, want last two points", got)
	}
}
