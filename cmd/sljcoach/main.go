// Command sljcoach analyses one standing-long-jump clip and prints the
// per-frame pose trace plus the coaching report — the use the paper's
// introduction motivates ("a tutor for the student to do self-training").
//
// Usage:
//
//	sljcoach -clip data/test/test-00 [-model model.gob] [-train data/]
//
// Provide either a trained -model or a -train dataset to fit on the fly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/imaging"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljcoach: ")

	var (
		clipDir = flag.String("clip", "", "clip directory written by sljgen (required)")
		model   = flag.String("model", "", "trained model from sljtrain")
		train   = flag.String("train", "", "dataset directory to train on when no model is given")
		dump    = flag.String("dump", "", "directory for per-frame analysis overlays (PPM)")
	)
	flag.Parse()
	if *clipDir == "" || (*model == "" && *train == "") {
		flag.Usage()
		os.Exit(2)
	}

	lc, err := dataset.LoadClip(*clipDir)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		err = sys.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ds, err := dataset.Load(*train)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Train(ds.Train); err != nil {
			log.Fatal(err)
		}
	}

	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			log.Fatal(err)
		}
		sys.SetBackground(lc.Clip.Background)
		for i, fr := range lc.Clip.Frames {
			fa, err := sys.AnalyzeFrame(fr.Image)
			if err != nil {
				log.Fatal(err)
			}
			overlay := slj.RenderAnalysis(fr.Image, fa)
			f, err := os.Create(filepath.Join(*dump, fmt.Sprintf("overlay-%03d.ppm", i)))
			if err != nil {
				log.Fatal(err)
			}
			if err := imaging.EncodePPM(f, overlay); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d overlays to %s\n", len(lc.Clip.Frames), *dump)
	}

	report, seq, err := sys.Coach(lc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip %s: %d frames\n\nper-frame poses:\n", lc.Name, len(seq))
	for i, p := range seq {
		marker := ""
		if i < len(lc.Clip.Frames) && lc.Clip.Frames[i].Label != p {
			marker = fmt.Sprintf("   (truth: %v)", lc.Clip.Frames[i].Label)
		}
		fmt.Printf("  %3d  %-46v%s\n", i, p, marker)
	}
	fmt.Printf("\ncoaching report:\n%s", report.String())

	if m, err := sys.MeasureJump(lc); err != nil {
		fmt.Printf("\njump distance: not measurable (%v)\n", err)
	} else {
		fmt.Printf("\njump distance: %.0f px (%.2f body heights), take-off frame %d, landing frame %d\n",
			m.DistancePx, m.BodyHeights, m.TakeoffFrame, m.LandingFrame)
	}
}
