// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark with the metrics the
// perf-tracking workflow cares about: name, iterations, ns/op, B/op and
// allocs/op. Lines that are not benchmark results (package headers, PASS,
// ok) are skipped. Used by `make bench-json`, which snapshots the suite
// into a dated BENCH_<date>.json file.
//
// With -compare it additionally acts as a regression gate: the parsed
// results are checked against a committed baseline snapshot and the
// process exits non-zero if any benchmark regressed beyond the allowed
// thresholds. Allocations are gated tightly (they are deterministic on a
// given toolchain); wall time is gated loosely because CI machines vary.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson > BENCH_2026-08-06.json
//	go test -bench . -benchmem -run '^$' . | benchjson -compare BENCH_baseline.json \
//	    -max-allocs-regress 10 -allocs-slack 2 -max-ns-regress 500 > BENCH_gate.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics absent from the line (e.g. B/op
// without -benchmem) stay zero and are omitted. Custom units reported
// via b.ReportMetric (frames/s, peak-clips, ...) land in Extra keyed by
// their unit string.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine decodes one `BenchmarkName-P  N  123 ns/op  45 B/op  6 allocs/op`
// line; ok is false for anything that is not a benchmark result.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		default:
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, true
}

// baseName strips the -<GOMAXPROCS> suffix go test appends to benchmark
// names ("BenchmarkStageThinning-8" -> "BenchmarkStageThinning") so a
// baseline recorded on an 8-core machine compares against any runner.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare checks cur against the baseline and returns the number of
// regressions, logging one line per comparison outcome to stderr.
//
// Allocations regress when cur > base*(1+allocsPct/100) + allocsSlack:
// the relative term scales with alloc-heavy benchmarks, the absolute
// slack keeps zero-alloc baselines from tripping on toolchain or
// sync.Pool jitter. Wall time regresses when cur > base*(1+nsPct/100).
// A negative percentage disables that dimension. Benchmarks new since
// the baseline pass with a note; baseline entries missing from the run
// are warned about but do not fail the gate (the run may be filtered).
func compare(baseline, cur []result, allocsPct, nsPct float64, allocsSlack int64) int {
	base := make(map[string]result, len(baseline))
	for _, r := range baseline {
		base[baseName(r.Name)] = r
	}
	seen := make(map[string]bool, len(cur))
	regressions := 0
	for _, r := range cur {
		name := baseName(r.Name)
		seen[name] = true
		b, ok := base[name]
		if !ok {
			log.Printf("NEW   %s: no baseline entry (allocs/op %d, ns/op %.0f)", name, r.AllocsPerOp, r.NsPerOp)
			continue
		}
		if allocsPct >= 0 {
			limit := int64(float64(b.AllocsPerOp)*(1+allocsPct/100)) + allocsSlack
			if r.AllocsPerOp > limit {
				log.Printf("FAIL  %s: allocs/op %d > limit %d (baseline %d, +%.0f%% +%d slack)",
					name, r.AllocsPerOp, limit, b.AllocsPerOp, allocsPct, allocsSlack)
				regressions++
				continue
			}
		}
		if nsPct >= 0 && b.NsPerOp > 0 {
			limit := b.NsPerOp * (1 + nsPct/100)
			if r.NsPerOp > limit {
				log.Printf("FAIL  %s: ns/op %.0f > limit %.0f (baseline %.0f, +%.0f%%)",
					name, r.NsPerOp, limit, b.NsPerOp, nsPct)
				regressions++
				continue
			}
		}
		log.Printf("ok    %s: allocs/op %d (baseline %d), ns/op %.0f (baseline %.0f)",
			name, r.AllocsPerOp, b.AllocsPerOp, r.NsPerOp, b.NsPerOp)
	}
	for _, r := range baseline {
		if name := baseName(r.Name); !seen[name] {
			log.Printf("GONE  %s: in baseline but not in this run (renamed or filtered out?)", name)
		}
	}
	return regressions
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	comparePath := flag.String("compare", "", "baseline JSON snapshot to gate against; exit 1 on regression")
	allocsPct := flag.Float64("max-allocs-regress", 10, "allowed allocs/op increase in percent (with -compare); negative disables")
	nsPct := flag.Float64("max-ns-regress", 500, "allowed ns/op increase in percent (with -compare); negative disables")
	allocsSlack := flag.Int64("allocs-slack", 2, "absolute allocs/op increase always allowed (with -compare)")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found on stdin (run with: go test -bench . -benchmem -run '^$' ./...)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))

	if *comparePath != "" {
		data, err := os.ReadFile(*comparePath)
		if err != nil {
			log.Fatal(err)
		}
		var baseline []result
		if err := json.Unmarshal(data, &baseline); err != nil {
			log.Fatalf("parsing baseline %s: %v", *comparePath, err)
		}
		if n := compare(baseline, results, *allocsPct, *nsPct, *allocsSlack); n > 0 {
			log.Fatalf("%d benchmark(s) regressed beyond the gate (baseline %s)", n, *comparePath)
		}
		log.Printf("gate passed against %s", *comparePath)
	}
}
