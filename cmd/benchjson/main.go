// Command benchjson converts `go test -bench` output on stdin into a JSON
// array on stdout, one object per benchmark with the metrics the
// perf-tracking workflow cares about: name, iterations, ns/op, B/op and
// allocs/op. Lines that are not benchmark results (package headers, PASS,
// ok) are skipped. Used by `make bench-json`, which snapshots the suite
// into a dated BENCH_<date>.json file.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson > BENCH_2026-08-06.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics absent from the line (e.g. B/op
// without -benchmem) stay zero and are omitted. Custom units reported
// via b.ReportMetric (frames/s, peak-clips, ...) land in Extra keyed by
// their unit string.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// parseLine decodes one `BenchmarkName-P  N  123 ns/op  45 B/op  6 allocs/op`
// line; ok is false for anything that is not a benchmark result.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		default:
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	return r, true
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found on stdin (run with: go test -bench . -benchmem -run '^$' ./...)")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(results))
}
