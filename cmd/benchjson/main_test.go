package main

import "testing"

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkStageThinning-8":    "BenchmarkStageThinning",
		"BenchmarkStageThinning-128":  "BenchmarkStageThinning",
		"BenchmarkStageThinning":      "BenchmarkStageThinning",
		"BenchmarkFig5-Ablation":      "BenchmarkFig5-Ablation",
		"BenchmarkEvaluate/workers-4": "BenchmarkEvaluate/workers",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareGate(t *testing.T) {
	baseline := []result{
		{Name: "BenchmarkA-8", AllocsPerOp: 0, NsPerOp: 1000},
		{Name: "BenchmarkB-8", AllocsPerOp: 100, NsPerOp: 2000},
	}
	cases := []struct {
		name string
		cur  []result
		want int
	}{
		{"identical", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 0, NsPerOp: 1000},
			{Name: "BenchmarkB-4", AllocsPerOp: 100, NsPerOp: 2000},
		}, 0},
		{"within slack", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 2, NsPerOp: 1000},
			{Name: "BenchmarkB-4", AllocsPerOp: 110, NsPerOp: 2000},
		}, 0},
		{"allocs regressed from zero", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 3, NsPerOp: 1000},
		}, 1},
		{"allocs regressed beyond pct+slack", []result{
			{Name: "BenchmarkB-4", AllocsPerOp: 113, NsPerOp: 2000},
		}, 1},
		{"ns regressed", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 0, NsPerOp: 6100},
		}, 1},
		{"ns within loose gate", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 0, NsPerOp: 5900},
		}, 0},
		{"new benchmark passes", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 0, NsPerOp: 1000},
			{Name: "BenchmarkC-4", AllocsPerOp: 999, NsPerOp: 9999},
		}, 0},
		{"both dimensions regress on separate benchmarks", []result{
			{Name: "BenchmarkA-4", AllocsPerOp: 50, NsPerOp: 1000},
			{Name: "BenchmarkB-4", AllocsPerOp: 100, NsPerOp: 99999},
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := compare(baseline, tc.cur, 10, 500, 2); got != tc.want {
				t.Errorf("compare() = %d regressions, want %d", got, tc.want)
			}
		})
	}
}

func TestCompareDisabledDimensions(t *testing.T) {
	baseline := []result{{Name: "BenchmarkA", AllocsPerOp: 1, NsPerOp: 100}}
	cur := []result{{Name: "BenchmarkA", AllocsPerOp: 500, NsPerOp: 100000}}
	if got := compare(baseline, cur, -1, -1, 0); got != 0 {
		t.Errorf("compare with both gates disabled = %d regressions, want 0", got)
	}
}
