// Command sljtrace converts a -spans JSONL span trace (written by the
// instrumented binaries) into Chrome trace-event JSON that loads
// directly in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
// Each clip becomes its own named thread row; each stage span becomes a
// complete ("X") event on that row.
//
// Usage:
//
//	sljeval -spans spans.jsonl ...
//	sljtrace spans.jsonl > trace.json
//	sljtrace -out trace.json spans.jsonl
//	sljtrace < spans.jsonl        # stdin → stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljtrace: ")

	out := flag.String("out", "", "write the trace-event JSON here instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: sljtrace [-out trace.json] [spans.jsonl]\n\nconverts a -spans JSONL file (stdin when omitted) to Chrome trace-event JSON for Perfetto\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	if err := obs.WriteTraceEvents(in, w); err != nil {
		log.Fatal(err)
	}
}
