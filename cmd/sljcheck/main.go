// Command sljcheck is the project's static-analysis multichecker. It
// runs the six invariant analyzers — pooldiscipline, maporder,
// syncmisuse, metricnames, nondet, and the whole-program allocfree (see
// DESIGN.md §8 and §13) — over the module's packages and exits non-zero
// if any finding survives.
//
// Usage:
//
//	go run ./cmd/sljcheck [-run name,name] [-json] [-github] [package patterns]
//	go run ./cmd/sljcheck -metric-inventory [package patterns]
//	go run ./cmd/sljcheck -hotpath [package patterns]
//
// Patterns default to ./... relative to the enclosing module. The
// loader type-checks the requested packages (and their module-local
// dependency closure) exactly once as one program; every analyzer —
// per-package and whole-program alike — runs over that shared result.
// Findings print as file:line:col: analyzer: message, with positions
// module-root-relative regardless of the invocation directory.
//
// -json switches the report to a machine-readable JSON array of
// {File, Line, Col, Analyzer, Message, Chain} objects; -github
// additionally emits GitHub Actions ::error workflow annotations on
// stderr so findings surface inline in pull-request diffs.
//
// -hotpath skips analysis and prints the current //slj:hotpath
// reachability set — one function per line with its discovery chain —
// so reviewers can diff hot-path growth between commits.
//
// -metric-inventory skips analysis and instead prints every metric
// registration site as a markdown table — the source of the metrics
// reference in DESIGN.md §12.
//
// Intentional violations are suppressed in source with //slj:<annotation>
// comments; each analyzer's package doc lists its annotation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/metricnames"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/pooldiscipline"
	"repro/internal/analysis/syncmisuse"
)

var all = []*analysis.Analyzer{
	allocfree.Analyzer,
	maporder.Analyzer,
	metricnames.Analyzer,
	nondet.Analyzer,
	pooldiscipline.Analyzer,
	syncmisuse.Analyzer,
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations on stderr")
	hotpath := flag.Bool("hotpath", false, "print the //slj:hotpath reachability set and exit")
	inventory := flag.Bool("metric-inventory", false, "print every metric registration site as a markdown table and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sljcheck [-run name,name] [-json] [-github] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sljcheck: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sljcheck:", err)
		os.Exit(2)
	}
	if _, err := loader.Load(patterns...); err != nil {
		fmt.Fprintln(os.Stderr, "sljcheck:", err)
		os.Exit(2)
	}
	// Whole-program analyzers must see dependency packages the patterns
	// didn't name, so hand every fully loaded package to the run.
	pkgs := loader.FullPackages()

	if *inventory {
		fmt.Println("| Name | Kind | Registered at |")
		fmt.Println("|---|---|---|")
		for _, s := range metricnames.Inventory(pkgs) {
			name := s.Name
			if !s.Literal {
				name = "(dynamic) `" + name + "`"
			} else {
				name = "`" + name + "`"
			}
			fmt.Printf("| %s | %s | %s:%d |\n", name, s.Kind, s.Pos.Filename, s.Pos.Line)
		}
		return
	}

	if *hotpath {
		printHotpath(pkgs)
		return
	}

	diags := analysis.Run(pkgs, analyzers)
	switch {
	case *jsonOut:
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Chain: d.Chain,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "sljcheck:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *github {
		for _, d := range diags {
			// ::error annotations must be single-line; the message already is.
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=sljcheck %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, escapeGitHub(d.Message))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sljcheck: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

// printHotpath lists every function reachable from a //slj:hotpath root
// under the allocfree traversal policy, one line each with the discovery
// chain — the reviewable hot-path surface.
func printHotpath(pkgs []*analysis.Package) {
	prog := analysis.NewProgram(pkgs)
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Syntax...)
	}
	pass := &analysis.Pass{Fset: prog.Fset, Files: files, Info: prog.Info, Program: prog}
	g, roots, parents := allocfree.HotPath(pass)
	if len(roots) == 0 {
		fmt.Println("no //slj:hotpath roots")
		return
	}
	for _, n := range g.Nodes() {
		if n.External() {
			continue
		}
		if _, ok := parents[n]; !ok {
			continue
		}
		chain := callgraph.Chain(parents, n)
		if len(chain) <= 1 {
			fmt.Printf("%s\t(root)\n", n.Name())
			continue
		}
		fmt.Printf("%s\tvia %s\n", n.Name(), strings.Join(chain[:len(chain)-1], " → "))
	}
}

// escapeGitHub encodes the characters the workflow-command grammar
// reserves in annotation messages.
func escapeGitHub(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
