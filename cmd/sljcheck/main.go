// Command sljcheck is the project's static-analysis multichecker. It
// runs the four invariant analyzers — pooldiscipline, maporder,
// syncmisuse, and metricnames (see DESIGN.md §8) — over the module's
// packages and exits non-zero if any finding survives.
//
// Usage:
//
//	go run ./cmd/sljcheck [-run name,name] [package patterns]
//	go run ./cmd/sljcheck -metric-inventory [package patterns]
//
// Patterns default to ./... relative to the enclosing module. Findings
// print as file:line:col: analyzer: message. Intentional violations are
// suppressed in source with //slj:<annotation> comments; each analyzer's
// package doc lists its annotation.
//
// -metric-inventory skips analysis and instead prints every metric
// registration site as a markdown table — the source of the metrics
// reference in DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/metricnames"
	"repro/internal/analysis/pooldiscipline"
	"repro/internal/analysis/syncmisuse"
)

var all = []*analysis.Analyzer{
	maporder.Analyzer,
	metricnames.Analyzer,
	pooldiscipline.Analyzer,
	syncmisuse.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	inventory := flag.Bool("metric-inventory", false, "print every metric registration site as a markdown table and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sljcheck [-run name,name] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sljcheck: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sljcheck:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sljcheck:", err)
		os.Exit(2)
	}

	wd, _ := os.Getwd()
	if *inventory {
		fmt.Println("| Name | Kind | Registered at |")
		fmt.Println("|---|---|---|")
		for _, s := range metricnames.Inventory(pkgs) {
			site := s.Pos.Filename
			if wd != "" {
				if rel, err := filepath.Rel(wd, site); err == nil && !strings.HasPrefix(rel, "..") {
					site = rel
				}
			}
			name := s.Name
			if !s.Literal {
				name = "(dynamic) `" + name + "`"
			} else {
				name = "`" + name + "`"
			}
			fmt.Printf("| %s | %s | %s:%d |\n", name, s.Kind, site, s.Pos.Line)
		}
		return
	}

	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		name := d.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sljcheck: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
