// Command sljexp regenerates the paper's evaluation artifacts: Figures
// 1-8, the Section 5 results, the GA baseline comparison and the
// extension sweeps. See DESIGN.md for the experiment index.
//
// Usage:
//
//	sljexp -exp all            # run everything at full size
//	sljexp -exp sec5           # one experiment
//	sljexp -exp fig3 -quick    # reduced workload
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljexp: ")

	var (
		exp       = flag.String("exp", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
		seed      = flag.Int64("seed", 2008, "experiment seed")
		quick     = flag.Bool("quick", false, "reduced workloads")
		artifacts = flag.String("artifacts", "", "directory for figure image/dot artifacts (optional)")
		workers   = flag.Int("workers", 0, "clip-evaluation workers for sec5/cv and the ext sweeps (0 sequential, -1 all CPUs); results are identical at any setting")
		stream    = flag.Bool("stream", false, "round-trip the corpus through a temp dir and stream clips lazily from disk (sec5; identical results)")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	scope, err := ocli.Start()
	if err != nil {
		log.Fatal(err)
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, ArtifactDir: *artifacts, Workers: *workers, Obs: scope, Stream: *stream}
	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		res, err := experiments.Run(name, cfg)
		if err != nil {
			log.Printf("%s: %v", name, err)
			failed = true
			continue
		}
		fmt.Printf("================ %s ================\n%s\n", name, res)
	}
	if err := ocli.Stop(); err != nil {
		log.Fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}
