// Command sljtrain trains the DBN pose-classifier bank on a dataset
// written by sljgen and saves the model.
//
// Usage:
//
//	sljtrain -data data/ -out model.gob [-partitions 8] [-gt-silhouettes]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljtrain: ")

	var (
		data       = flag.String("data", "", "dataset directory written by sljgen (required)")
		out        = flag.String("out", "model.gob", "model output path")
		partitions = flag.Int("partitions", 8, "feature-encoding areas")
		gtSil      = flag.Bool("gt-silhouettes", false, "bypass extraction and use ground-truth silhouettes")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	scope, err := ocli.Start()
	if err != nil {
		log.Fatal(err)
	}

	ds, err := dataset.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	if *gtSil {
		for _, lc := range ds.Train {
			for i, fr := range lc.Clip.Frames {
				if fr.Silhouette == nil {
					log.Fatalf("clip %s frame %d has no stored silhouette; regenerate with sljgen", lc.Name, i)
				}
			}
		}
	}
	sys, err := slj.NewSystem(
		slj.WithPartitions(*partitions),
		slj.WithGroundTruthSilhouettes(*gtSil),
		slj.WithObservability(scope),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := sys.SaveModel(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	trainFrames, _ := ds.TotalFrames()
	fmt.Printf("trained on %d clips (%d frames); model written to %s\n",
		len(ds.Train), trainFrames, *out)
	if err := ocli.Stop(); err != nil {
		log.Fatal(err)
	}
}
