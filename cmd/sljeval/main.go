// Command sljeval reproduces the paper's Section 5 evaluation: per-clip
// pose-classification accuracy over the test split, with the confusion
// summary.
//
// Usage:
//
//	sljeval -data data/ [-model model.gob] [-stream]
//
// Without -model the classifier is trained in-process on the dataset's
// training split first. With -stream the corpus is not materialised:
// clips (and the frames inside them) are decoded lazily as the engine
// pulls them, so corpora larger than RAM evaluate in bounded memory
// with identical results.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljeval: ")

	var (
		data    = flag.String("data", "", "dataset directory written by sljgen (required)")
		model   = flag.String("model", "", "trained model from sljtrain (optional; trains in-process when empty)")
		viterbi = flag.Bool("viterbi", false, "also report joint Viterbi decoding (the EXT3 extension)")
		workers = flag.Int("workers", 1, "clip-evaluation workers (1 sequential, 0 or -1 all CPUs); results are identical at any setting")
		stream  = flag.Bool("stream", false, "stream clips lazily from -data instead of materialising the corpus up front (bounded memory, identical results)")
		skipBad = flag.Bool("skip-corrupt", false, "with -stream, skip clips that fail to decode (classified into the error journal) instead of aborting")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	scope, err := ocli.Start()
	if err != nil {
		log.Fatal(err)
	}

	// openTrain/openTest yield the corpus: materialised from one up-front
	// Load by default, or as lazy directory streams under -stream (only
	// the clips in flight are decoded; the engine overlaps disk I/O with
	// the vision front end).
	var openTrain, openTest func() (dataset.ClipSource, error)
	if *stream {
		if _, _, err := dataset.OpenSplits(*data); err != nil {
			log.Fatal(err)
		}
		openSplit := func(split string) (dataset.ClipSource, error) {
			src, err := dataset.OpenDir(filepath.Join(*data, split))
			if err != nil {
				return nil, err
			}
			if *skipBad {
				return dataset.SkipCorrupt(src, scope), nil
			}
			return src, nil
		}
		openTrain = func() (dataset.ClipSource, error) { return openSplit("train") }
		openTest = func() (dataset.ClipSource, error) { return openSplit("test") }
	} else {
		ds, err := dataset.Load(*data)
		if err != nil {
			log.Fatal(err)
		}
		openTrain = func() (dataset.ClipSource, error) { return dataset.Materialized(ds.Train), nil }
		openTest = func() (dataset.ClipSource, error) { return dataset.Materialized(ds.Test), nil }
	}
	eng, err := slj.NewEngine(*workers, slj.WithObservability(scope))
	if err != nil {
		log.Fatal(err)
	}
	sys := eng.System()
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		err = eng.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		src, err := openTrain()
		if err != nil {
			log.Fatal(err)
		}
		err = eng.TrainSource(src)
		src.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	testSrc, err := openTest()
	if err != nil {
		log.Fatal(err)
	}
	sum, conf, err := eng.EvaluateSource(testSrc)
	testSrc.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 5 evaluation (paper band: 81%-87% per clip)")
	fmt.Print(sum.Table())
	fmt.Printf("unknown rate: %.1f%%\n", 100*conf.UnknownRate())
	fmt.Println("top confusions:")
	for _, c := range conf.TopConfusions(8) {
		fmt.Printf("  %-46v -> %-46v %d\n", c.Truth, c.Predicted, c.Count)
	}

	if *viterbi {
		var vsum stats.Summary
		vsrc, err := openTest()
		if err != nil {
			log.Fatal(err)
		}
		for {
			lc, err := vsrc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			seq, err := sys.ClassifyClipViterbi(lc)
			if err != nil {
				log.Fatal(err)
			}
			cr, err := stats.EvaluateClip(lc.Name, lc.Clip.Labels(), seq)
			if err != nil {
				log.Fatal(err)
			}
			vsum.Add(cr)
		}
		vsrc.Close()
		fmt.Println("\nViterbi joint decoding (EXT3 extension):")
		fmt.Print(vsum.Table())
	}

	if err := ocli.Stop(); err != nil {
		log.Fatal(err)
	}
}
