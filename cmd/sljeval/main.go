// Command sljeval reproduces the paper's Section 5 evaluation: per-clip
// pose-classification accuracy over the test split, with the confusion
// summary.
//
// Usage:
//
//	sljeval -data data/ [-model model.gob]
//
// Without -model the classifier is trained in-process on the dataset's
// training split first.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljeval: ")

	var (
		data    = flag.String("data", "", "dataset directory written by sljgen (required)")
		model   = flag.String("model", "", "trained model from sljtrain (optional; trains in-process when empty)")
		viterbi = flag.Bool("viterbi", false, "also report joint Viterbi decoding (the EXT3 extension)")
		workers = flag.Int("workers", 1, "clip-evaluation workers (1 sequential, 0 or -1 all CPUs); results are identical at any setting")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	scope, err := ocli.Start()
	if err != nil {
		log.Fatal(err)
	}

	ds, err := dataset.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := slj.NewEngine(*workers, slj.WithObservability(scope))
	if err != nil {
		log.Fatal(err)
	}
	sys := eng.System()
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatal(err)
		}
		err = eng.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if len(ds.Train) == 0 {
			log.Fatal("no training clips in dataset and no -model given")
		}
		if err := eng.Train(ds.Train); err != nil {
			log.Fatal(err)
		}
	}

	sum, conf, err := eng.Evaluate(ds.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 5 evaluation (paper band: 81%-87% per clip)")
	fmt.Print(sum.Table())
	fmt.Printf("unknown rate: %.1f%%\n", 100*conf.UnknownRate())
	fmt.Println("top confusions:")
	for _, c := range conf.TopConfusions(8) {
		fmt.Printf("  %-46v -> %-46v %d\n", c.Truth, c.Predicted, c.Count)
	}

	if *viterbi {
		var vsum stats.Summary
		for _, lc := range ds.Test {
			seq, err := sys.ClassifyClipViterbi(lc)
			if err != nil {
				log.Fatal(err)
			}
			cr, err := stats.EvaluateClip(lc.Name, lc.Clip.Labels(), seq)
			if err != nil {
				log.Fatal(err)
			}
			vsum.Add(cr)
		}
		fmt.Println("\nViterbi joint decoding (EXT3 extension):")
		fmt.Print(vsum.Table())
	}

	if err := ocli.Stop(); err != nil {
		log.Fatal(err)
	}
}
