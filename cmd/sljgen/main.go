// Command sljgen generates the synthetic standing-long-jump dataset and
// writes it to disk as Netpbm frames plus label files.
//
// Usage:
//
//	sljgen -out data/ [-train 12] [-test 3] [-seed 2008] [-fault-every 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljgen: ")

	var (
		out        = flag.String("out", "", "output directory (required)")
		trainClips = flag.Int("train", dataset.DefaultTrainClips, "number of training clips")
		testClips  = flag.Int("test", dataset.DefaultTestClips, "number of test clips")
		seed       = flag.Int64("seed", 2008, "generation seed")
		faultEvery = flag.Int("fault-every", 4, "inject a fault pose into every n-th training clip (0 = never)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := dataset.GenOptions{
		TrainClips: *trainClips,
		TestClips:  *testClips,
		Seed:       *seed,
		FaultEvery: *faultEvery,
		VaryBody:   true,
	}
	ds, err := dataset.Generate(opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.Save(*out, ds); err != nil {
		log.Fatal(err)
	}
	train, test := ds.TotalFrames()
	fmt.Printf("wrote %d training clips (%d frames) and %d test clips (%d frames) to %s\n",
		len(ds.Train), train, len(ds.Test), test, *out)
}
