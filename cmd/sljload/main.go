// Command sljload drives a running sljserve with synthetic clips at a
// target offered load and reports what the server actually delivered:
// client-side and server-side latency quantiles (p50/p95/p99 from the
// same stage histograms the run reports use), success/shed/failure
// counts, and the server's health verdict and pool-leak gauges after
// the run — the serving twin of the batch RUN_REPORT.
//
// Usage:
//
//	sljload -addr 127.0.0.1:8080 -clips 200 -qps 50 [-out LOAD_REPORT.json]
//
// The loop is open: requests are dispatched on the QPS clock regardless
// of how many are still in flight, so an overloaded server is observed
// shedding (503) rather than silently serialising the offered load.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LoadReport is the JSON artifact sljload writes: offered vs delivered
// load, client latency quantiles, the server-side request histogram
// delta over the run, and the post-run health/leak readings the smoke
// harness greps.
type LoadReport struct {
	Schema     int     `json:"schema"`
	Addr       string  `json:"addr"`
	Clips      int     `json:"clips"`
	OfferedQPS float64 `json:"offered_qps"`
	WallNS     int64   `json:"wall_ns"`

	Succeeded int64 `json:"succeeded"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`

	ClientP50NS float64 `json:"client_p50_ns"`
	ClientP95NS float64 `json:"client_p95_ns"`
	ClientP99NS float64 `json:"client_p99_ns"`

	// Server-side request latency over the run window, from the
	// serve.request_ns histogram delta between two /debug/metrics scrapes.
	Server obs.StageQuantiles `json:"server_request_ns"`

	HealthReady            bool   `json:"health_ready"`
	HealthVerdict          string `json:"health_verdict"`
	EngineClipsCheckedOut  int64  `json:"engine_clips_checked_out"`
	ImagingPoolBalance     int64  `json:"imaging_pool_balance"`
	ServerInflightWorkers  int64  `json:"server_inflight_workers"`
	ServerRequestsObserved int64  `json:"server_requests_observed"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljload: ")

	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "sljserve address")
		clips   = flag.Int("clips", 200, "number of classify-clip requests to send")
		qps     = flag.Float64("qps", 50, "offered load in requests per second (open loop)")
		seed    = flag.Int64("seed", 1, "base synthetic-clip seed; request i uses seed+i")
		out     = flag.String("out", "", "write the load report JSON here (stdout when empty)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	)
	flag.Parse()
	if *clips <= 0 || *qps <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: *timeout}

	before, err := scrapeMetrics(client, base)
	if err != nil {
		log.Fatalf("scraping %s/debug/metrics: %v (is sljserve up?)", base, err)
	}

	// Client latencies go through the same histogram layout the server
	// uses, so both sides of the report quantise identically.
	lat := obs.NewRegistry().Histogram("load.client_ns", obs.LatencyBounds)

	var succeeded, shed, failed atomic.Int64
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *qps)
	t0 := time.Now()
	tick := time.NewTicker(interval)
	for i := 0; i < *clips; i++ {
		if i > 0 {
			<-tick.C
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"method": "classify-clip", "params": {"synthetic": {"seed": %d}}, "id": %d}`, *seed+int64(i), i)
			r0 := time.Now()
			resp, err := client.Post(base+"/rpc", "application/json", bytes.NewReader([]byte(body)))
			lat.Observe(time.Since(r0).Nanoseconds())
			if err != nil {
				failed.Add(1)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				succeeded.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}(i)
	}
	tick.Stop()
	wg.Wait()
	wall := time.Since(t0)

	// The server finishes its per-request accounting (budget release,
	// latency observation) after the response is written; give those
	// deferred updates a beat before the post-run scrape.
	time.Sleep(200 * time.Millisecond)
	after, err := scrapeMetrics(client, base)
	if err != nil {
		log.Fatalf("post-run metrics scrape: %v", err)
	}
	health, err := scrapeHealth(client, base)
	if err != nil {
		log.Fatalf("post-run health scrape: %v", err)
	}

	clientSnap := lat.Snapshot()
	serverDelta := histogramNamed(after, "serve.request_ns").Sub(histogramNamed(before, "serve.request_ns"))
	rep := LoadReport{
		Schema:     1,
		Addr:       *addr,
		Clips:      *clips,
		OfferedQPS: *qps,
		WallNS:     wall.Nanoseconds(),
		Succeeded:  succeeded.Load(),
		Shed:       shed.Load(),
		Failed:     failed.Load(),

		ClientP50NS: clientSnap.Quantile(0.50),
		ClientP95NS: clientSnap.Quantile(0.95),
		ClientP99NS: clientSnap.Quantile(0.99),

		Server: obs.StageQuantiles{
			Name:   "serve.request_ns",
			Count:  serverDelta.Count,
			MeanNS: mean(serverDelta),
			P50NS:  serverDelta.Quantile(0.50),
			P95NS:  serverDelta.Quantile(0.95),
			P99NS:  serverDelta.Quantile(0.99),
		},

		HealthReady:            health.Ready,
		HealthVerdict:          health.Verdict.String(),
		EngineClipsCheckedOut:  valueNamed(after, "serve.clips_checked_out"),
		ImagingPoolBalance:     valueNamed(after, "imaging.pool.balance"),
		ServerInflightWorkers:  valueNamed(after, "serve.inflight_workers"),
		ServerRequestsObserved: valueNamed(after, "serve.requests") - valueNamed(before, "serve.requests"),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d clips at %.1f qps in %s: %d ok, %d shed, %d failed; server p50 %.1fms p99 %.1fms",
		*clips, *qps, wall.Round(time.Millisecond), rep.Succeeded, rep.Shed, rep.Failed,
		rep.Server.P50NS/1e6, rep.Server.P99NS/1e6)
}

func scrapeMetrics(client *http.Client, base string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := client.Get(base + "/debug/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("status %s", resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

func scrapeHealth(client *http.Client, base string) (obs.HealthSnapshot, error) {
	var rep obs.HealthSnapshot
	resp, err := client.Get(base + "/debug/health")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	// A failing verdict answers 503 with the same JSON body; decode both.
	return rep, json.NewDecoder(resp.Body).Decode(&rep)
}

func histogramNamed(snap obs.Snapshot, name string) obs.HistogramSnapshot {
	for _, h := range snap.Histograms {
		if h.Name == name {
			return h.HistogramSnapshot
		}
	}
	return obs.HistogramSnapshot{}
}

// valueNamed finds a counter or gauge by name (0 when absent).
func valueNamed(snap obs.Snapshot, name string) int64 {
	for _, m := range snap.Counters {
		if m.Name == name {
			return m.Value
		}
	}
	for _, m := range snap.Gauges {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func mean(s obs.HistogramSnapshot) float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
