// Command sljvideo converts clips between the dataset's per-frame Netpbm
// layout and a single YUV4MPEG2 (.y4m) stream playable in standard video
// tools (mpv, ffplay, VLC).
//
// Usage:
//
//	sljvideo -clip data/test/test-00 -out test00.y4m [-fps 25]   # export
//	sljvideo -gen 42 -out jump.y4m                               # synthesise directly
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dataset"
	"repro/internal/imaging"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sljvideo: ")

	var (
		clipDir = flag.String("clip", "", "clip directory written by sljgen")
		gen     = flag.Int64("gen", -1, "generate a fresh clip with this seed instead of loading one")
		out     = flag.String("out", "", "output .y4m path (required)")
		fps     = flag.Int("fps", 25, "frame rate")
	)
	var ocli obs.CLI
	ocli.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *out == "" || (*clipDir == "" && *gen < 0) {
		flag.Usage()
		os.Exit(2)
	}
	// sljvideo runs no classification pipeline, so the scope goes unused;
	// the flags still expose pprof, runtime tracing and the metrics server
	// for profiling generation and encoding.
	if _, err := ocli.Start(); err != nil {
		log.Fatal(err)
	}

	var frames []*imaging.RGB
	switch {
	case *gen >= 0:
		clip, err := synth.Generate(synth.DefaultSpec(*gen))
		if err != nil {
			log.Fatal(err)
		}
		for _, fr := range clip.Frames {
			frames = append(frames, fr.Image)
		}
	default:
		lc, err := dataset.LoadClip(*clipDir)
		if err != nil {
			log.Fatal(err)
		}
		for _, fr := range lc.Clip.Frames {
			frames = append(frames, fr.Image)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := video.WriteClip(f, frames, *fps); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d frames (%dx%d @ %d fps) to %s\n",
		len(frames), frames[0].W, frames[0].H, *fps, *out)
	if err := ocli.Stop(); err != nil {
		log.Fatal(err)
	}
}
