package slj

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// fullScope wires the complete flight-recorder stack the CLI assembles:
// registry, journal, shared span+log sink, sampler and SLO health
// evaluator. It returns the scope plus the pieces the tests assert on.
func fullScope(t *testing.T, logs *bytes.Buffer) (*obs.Scope, *obs.Journal, *obs.HealthEvaluator, *obs.Sampler, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	scope := obs.NewScope(reg)
	journal := obs.NewJournal(reg, 256)
	scope.SetJournal(journal)
	sink := obs.NewLineSink(logs)
	scope.SetLogger(obs.NewLogger(sink, slog.LevelDebug))
	tracer := obs.NewTracerSink(sink)
	scope.SetTracer(tracer)
	smp := obs.NewSampler(reg, time.Hour, 64)
	smp.Start()
	health, err := obs.NewHealthEvaluator(reg, smp, journal, obs.DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	smp.SetOnTick(health.Eval)
	stop := func() {
		smp.Stop() // final tick runs the health eval hook
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return scope, journal, health, smp, stop
}

// TestEngineLoggedMatchesSequential pins the flight-recorder contract:
// with everything on — structured debug logging, the error journal,
// span tracing onto the same sink as the logs, the sampler and the SLO
// evaluator — engine results stay bit-identical to the uninstrumented
// sequential path at every worker count, every emitted line is valid
// JSON, and each clip's span records agree on one trace ID.
func TestEngineLoggedMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 65)
	sys, model := trainGolden(t, ds)
	wantSum, wantConf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		var logs bytes.Buffer
		scope, journal, health, _, stop := fullScope(t, &logs)
		eng, err := NewEngine(workers, WithObservability(scope))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		sum, conf, err := eng.Evaluate(ds.Test)
		stop()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, wantSum) {
			t.Errorf("workers=%d: instrumented summary differs from sequential", workers)
		}
		if !reflect.DeepEqual(*conf, *wantConf) {
			t.Errorf("workers=%d: instrumented confusion matrix differs from sequential", workers)
		}
		if got := health.Health(); got != obs.VerdictReady {
			t.Errorf("workers=%d: healthy run verdict = %v, want ready\n%+v",
				workers, got, health.Snapshot())
		}
		if got := journal.Count(obs.ErrClassDecode); got != 0 {
			t.Errorf("workers=%d: healthy run journaled %d decode errors", workers, got)
		}

		// The shared sink carries spans and log events; no line tore and
		// every clip's span records carry exactly one trace ID.
		clipTrace := map[string]string{}
		lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
		if len(lines) == 0 {
			t.Fatalf("workers=%d: no output lines", workers)
		}
		for _, line := range lines {
			var rec struct {
				Clip  string `json:"clip"`
				Trace string `json:"trace"`
				Stage string `json:"stage"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("workers=%d: bad line %q: %v", workers, line, err)
			}
			if rec.Clip == "" {
				continue // run-level event or unlabelled span
			}
			if rec.Trace == "" {
				t.Fatalf("workers=%d: clip-labelled line missing trace: %s", workers, line)
			}
			if prev, ok := clipTrace[rec.Clip]; ok && prev != rec.Trace {
				t.Fatalf("workers=%d: clip %s carries two traces %s and %s",
					workers, rec.Clip, prev, rec.Trace)
			}
			clipTrace[rec.Clip] = rec.Trace
		}
		if len(clipTrace) != len(ds.Test) {
			t.Errorf("workers=%d: traced %d clips, want %d", workers, len(clipTrace), len(ds.Test))
		}
		// Trace IDs are unique across clips.
		seen := map[string]string{}
		for clip, tr := range clipTrace {
			if other, dup := seen[tr]; dup {
				t.Errorf("workers=%d: clips %s and %s share trace %s", workers, clip, other, tr)
			}
			seen[tr] = clip
		}
	}
}

// TestCorruptClipHealthEndToEnd injects a corrupt clip into an on-disk
// corpus and drives an instrumented streaming evaluation over it with
// skip-corrupt ingest. The acceptance chain: the journal records a
// decode-class entry with a trace ID, the errors.decode counter moves,
// the health verdict lands on degraded with the decode class
// attributed, and the breach reason carries the same trace ID as the
// journal entry.
func TestCorruptClipHealthEndToEnd(t *testing.T) {
	ds := smallDataset(t, 65)
	root := saveCorpus(t, ds)

	// Corrupt one test clip's background so its header fails to decode.
	dirs, err := os.ReadDir(filepath.Join(root, "test"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no test clips saved")
	}
	bad := filepath.Join(root, "test", dirs[0].Name(), "background.ppm")
	if err := os.WriteFile(bad, []byte("not a ppm\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logs bytes.Buffer
	scope, journal, health, smp, stop := fullScope(t, &logs)
	eng, err := NewEngine(2, WithObservability(scope))
	if err != nil {
		t.Fatal(err)
	}
	_, model := trainGolden(t, ds)
	if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
		t.Fatal(err)
	}

	src, err := dataset.OpenDir(filepath.Join(root, "test"))
	if err != nil {
		t.Fatal(err)
	}
	resilient := dataset.SkipCorrupt(src, scope)
	smp.Tick() // rate baseline before the errors land
	sum, _, err := eng.EvaluateSource(resilient)
	if err != nil {
		t.Fatalf("skip-corrupt evaluation aborted: %v", err)
	}
	stop() // final sampler tick -> final health eval

	if got := resilient.(interface{ Skipped() int }).Skipped(); got != 1 {
		t.Errorf("skipped = %d clips, want 1", got)
	}
	if got, want := len(sum.Clips), len(ds.Test)-1; got != want {
		t.Errorf("evaluated %d clips, want %d", got, want)
	}

	// Journal: one decode entry, carrying a trace ID and the message.
	if got := journal.Count(obs.ErrClassDecode); got != 1 {
		t.Fatalf("journal decode count = %d, want 1", got)
	}
	jsnap := journal.Snapshot()
	var decodeClass *obs.JournalClass
	for i := range jsnap.Classes {
		if jsnap.Classes[i].Class == obs.ErrClassDecode {
			decodeClass = &jsnap.Classes[i]
		}
	}
	if decodeClass == nil {
		t.Fatalf("no decode class in journal snapshot: %+v", jsnap)
	}
	entry := decodeClass.Exemplars[len(decodeClass.Exemplars)-1]
	if entry.Trace == "" {
		t.Fatal("journal entry has no trace ID")
	}
	if !strings.Contains(entry.Msg, dirs[0].Name()) {
		t.Errorf("journal message %q does not name the corrupt clip %s", entry.Msg, dirs[0].Name())
	}

	// Health: degraded with the decode_errors objective breaching, the
	// breach attributed to the decode class via the journal's trace ID.
	hsnap := health.Snapshot()
	if hsnap.Verdict != obs.VerdictDegraded {
		t.Fatalf("verdict = %v, want degraded\n%+v", hsnap.Verdict, hsnap)
	}
	var decodeSLO *obs.SLOState
	for i := range hsnap.SLOs {
		if hsnap.SLOs[i].Name == "decode_errors" {
			decodeSLO = &hsnap.SLOs[i]
		}
	}
	if decodeSLO == nil || decodeSLO.Level == "ok" {
		t.Fatalf("decode_errors objective not breaching: %+v", hsnap.SLOs)
	}
	if decodeSLO.Trace != entry.Trace {
		t.Errorf("health trace %q != journal trace %q", decodeSLO.Trace, entry.Trace)
	}
	if !strings.Contains(decodeSLO.Reason, entry.Trace) {
		t.Errorf("breach reason %q missing trace %s", decodeSLO.Reason, entry.Trace)
	}

	// The error-level log line carries the same trace ID.
	if !strings.Contains(logs.String(), entry.Trace) {
		t.Errorf("log stream missing trace %s:\n%s", entry.Trace, logs.String())
	}
}
