package slj

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// trainGolden trains a sequential System on ds.Train and returns the
// serialised model plus the system itself.
func trainGolden(t *testing.T, ds *Dataset, opts ...Option) (*System, []byte) {
	t.Helper()
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	return sys, buf.Bytes()
}

func TestEngineTrainMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 61)
	_, want := trainGolden(t, ds)
	for _, workers := range []int{1, 2, 8} {
		eng, err := NewEngine(workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Train(ds.Train); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: trained model differs from sequential", workers)
		}
	}
}

func TestEngineEvaluateMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 62)
	sys, model := trainGolden(t, ds)
	wantSum, wantConf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		eng, err := NewEngine(workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		sum, conf, err := eng.Evaluate(ds.Test)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, wantSum) {
			t.Errorf("workers=%d: summary differs from sequential", workers)
		}
		if !reflect.DeepEqual(*conf, *wantConf) {
			t.Errorf("workers=%d: confusion matrix differs from sequential", workers)
		}
	}
}

func TestEngineClassifyClipMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 63)
	_, model := trainGolden(t, ds)
	variants := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"roi-tracking", []Option{WithROITracking(true)}},
		{"ground-truth-sils", []Option{WithGroundTruthSilhouettes(true)}},
		{"auto-orient", []Option{WithAutoOrient(true)}}, // batch fallback path
	}
	for _, v := range variants {
		seq, err := NewSystem(v.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := seq.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		lc := ds.Test[0]
		want, err := seq.ClassifyClip(lc)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			eng, err := NewEngine(workers, v.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
				t.Fatal(err)
			}
			got, err := eng.ClassifyClip(lc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: clip results differ from sequential", v.name, workers)
			}
		}
	}
}

func TestEngineClassifyAllMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 64)
	sys, model := trainGolden(t, ds)
	want := make([][]Result, len(ds.Test))
	for i, lc := range ds.Test {
		res, err := sys.ClassifyClip(lc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	eng, err := NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
		t.Fatal(err)
	}
	got, err := eng.ClassifyAll(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("ClassifyAll differs from sequential per-clip classification")
	}
}

func TestEngineWorkersResolution(t *testing.T) {
	eng, err := NewEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", eng.Workers())
	}
	auto, err := NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Workers() < 1 {
		t.Errorf("auto worker count = %d, want >= 1", auto.Workers())
	}
	if auto.System() == nil {
		t.Error("System() returned nil")
	}
}

// TestEngineObservedMatchesSequential pins the observability contract:
// with a full scope attached — registry, health counters AND the JSONL
// span tracer — engine results stay bit-identical to the uninstrumented
// sequential path at every worker count, while the instruments actually
// record the work.
func TestEngineObservedMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 65)
	sys, model := trainGolden(t, ds)
	wantSum, wantConf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		var spans bytes.Buffer
		scope := obs.NewScope(obs.NewRegistry())
		tracer := obs.NewTracer(&spans)
		scope.SetTracer(tracer)
		eng, err := NewEngine(workers, WithObservability(scope))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		sum, conf, err := eng.Evaluate(ds.Test)
		if err != nil {
			t.Fatal(err)
		}
		if err := tracer.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, wantSum) {
			t.Errorf("workers=%d: instrumented summary differs from sequential", workers)
		}
		if !reflect.DeepEqual(*conf, *wantConf) {
			t.Errorf("workers=%d: instrumented confusion matrix differs from sequential", workers)
		}

		snap := scope.Registry().Snapshot()
		counters := map[string]int64{}
		for _, c := range snap.Counters {
			counters[c.Name] = c.Value
		}
		wantFrames := int64(0)
		for _, lc := range ds.Test {
			wantFrames += int64(len(lc.Clip.Frames))
		}
		if got := counters["pipeline.frames"]; got != wantFrames {
			t.Errorf("workers=%d: pipeline.frames = %d, want %d", workers, got, wantFrames)
		}
		decided := int64(0)
		for _, c := range snap.Counters {
			if strings.HasPrefix(c.Name, "pipeline.decided.") {
				decided += c.Value
			}
		}
		if decided != wantFrames {
			t.Errorf("workers=%d: decided frames = %d, want %d", workers, decided, wantFrames)
		}
		histCount := map[string]int64{}
		for _, h := range snap.Histograms {
			histCount[h.Name] = h.Count
		}
		for _, stage := range []string{"thin", "graph", "classify"} {
			if histCount["stage."+stage+".ns"] != wantFrames {
				t.Errorf("workers=%d: stage.%s.ns count = %d, want %d",
					workers, stage, histCount["stage."+stage+".ns"], wantFrames)
			}
		}

		// Every span record is well-formed JSON labelled with a test clip.
		lines := strings.Split(strings.TrimSpace(spans.String()), "\n")
		if int64(len(lines)) < wantFrames {
			t.Fatalf("workers=%d: %d span records, want >= %d", workers, len(lines), wantFrames)
		}
		for _, line := range lines {
			var rec struct {
				Clip  string `json:"clip"`
				Stage string `json:"stage"`
				NS    int64  `json:"ns"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("workers=%d: bad span record %q: %v", workers, line, err)
			}
			if rec.Stage == "" || !strings.HasPrefix(rec.Clip, "test-") {
				t.Fatalf("workers=%d: span record %q missing stage or clip label", workers, line)
			}
		}
	}
}

// TestEngineSampledReportMatchesSequential extends the observability
// contract to the consumption layer: with a live Sampler snapshotting
// the registry at a tiny interval AND an end-of-run report, engine
// results stay bit-identical to the uninstrumented sequential path,
// and the report's stage quantiles agree exactly with quantiles
// computed from the registry's final histogram snapshots.
func TestEngineSampledReportMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 65)
	sys, model := trainGolden(t, ds)
	wantSum, wantConf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}

	scope := obs.NewScope(obs.NewRegistry())
	smp := obs.NewSampler(scope.Registry(), time.Millisecond, 64)
	smp.Start()
	eng, err := NewEngine(4, WithObservability(scope))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sum, conf, err := eng.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	smp.Stop()

	if !reflect.DeepEqual(sum, wantSum) {
		t.Error("sampled run summary differs from sequential")
	}
	if !reflect.DeepEqual(*conf, *wantConf) {
		t.Error("sampled run confusion matrix differs from sequential")
	}

	// The sampler observed the run: its final tick carries the lifetime
	// frame count spread across the sampled windows.
	ts := smp.Series()
	if ts.Ticks < 1 {
		t.Fatalf("sampler ticks = %d, want >= 1", ts.Ticks)
	}
	if _, ok := ts.Latest("pipeline.frames.rate"); !ok {
		t.Error("pipeline.frames.rate series missing after a sampled run")
	}

	// The run report derives from the very snapshot it claims to
	// summarise.
	snap := scope.Registry().Snapshot()
	rep := obs.BuildRunReport(snap, time.Since(start), time.Now())
	wantFrames := int64(0)
	for _, lc := range ds.Test {
		wantFrames += int64(len(lc.Clip.Frames))
	}
	if rep.Frames != wantFrames {
		t.Errorf("report frames = %d, want %d", rep.Frames, wantFrames)
	}
	byName := map[string]obs.HistogramSnapshot{}
	for _, h := range snap.Histograms {
		byName[h.Name] = h.HistogramSnapshot
	}
	if len(rep.Stages) != len(byName) {
		t.Fatalf("report stages = %d, want %d", len(rep.Stages), len(byName))
	}
	for _, st := range rep.Stages {
		hs, ok := byName[st.Name]
		if !ok {
			t.Errorf("report stage %q has no registry histogram", st.Name)
			continue
		}
		if st.Count != hs.Count {
			t.Errorf("report %s count = %d, registry %d", st.Name, st.Count, hs.Count)
		}
		for _, q := range []struct {
			got float64
			q   float64
		}{{st.P50NS, 0.50}, {st.P95NS, 0.95}, {st.P99NS, 0.99}} {
			if want := hs.Quantile(q.q); q.got != want {
				t.Errorf("report %s q%.0f = %v, registry quantile %v", st.Name, q.q*100, q.got, want)
			}
		}
	}
}

func TestEngineTrainRequiresClips(t *testing.T) {
	eng, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
}
