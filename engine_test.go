package slj

import (
	"bytes"
	"reflect"
	"testing"
)

// trainGolden trains a sequential System on ds.Train and returns the
// serialised model plus the system itself.
func trainGolden(t *testing.T, ds *Dataset, opts ...Option) (*System, []byte) {
	t.Helper()
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	return sys, buf.Bytes()
}

func TestEngineTrainMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 61)
	_, want := trainGolden(t, ds)
	for _, workers := range []int{1, 2, 8} {
		eng, err := NewEngine(workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Train(ds.Train); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: trained model differs from sequential", workers)
		}
	}
}

func TestEngineEvaluateMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 62)
	sys, model := trainGolden(t, ds)
	wantSum, wantConf, err := sys.Evaluate(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		eng, err := NewEngine(workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		sum, conf, err := eng.Evaluate(ds.Test)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, wantSum) {
			t.Errorf("workers=%d: summary differs from sequential", workers)
		}
		if !reflect.DeepEqual(*conf, *wantConf) {
			t.Errorf("workers=%d: confusion matrix differs from sequential", workers)
		}
	}
}

func TestEngineClassifyClipMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 63)
	_, model := trainGolden(t, ds)
	variants := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"roi-tracking", []Option{WithROITracking(true)}},
		{"ground-truth-sils", []Option{WithGroundTruthSilhouettes(true)}},
		{"auto-orient", []Option{WithAutoOrient(true)}}, // batch fallback path
	}
	for _, v := range variants {
		seq, err := NewSystem(v.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := seq.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		lc := ds.Test[0]
		want, err := seq.ClassifyClip(lc)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			eng, err := NewEngine(workers, v.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
				t.Fatal(err)
			}
			got, err := eng.ClassifyClip(lc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s workers=%d: clip results differ from sequential", v.name, workers)
			}
		}
	}
}

func TestEngineClassifyAllMatchesSequential(t *testing.T) {
	ds := smallDataset(t, 64)
	sys, model := trainGolden(t, ds)
	want := make([][]Result, len(ds.Test))
	for i, lc := range ds.Test {
		res, err := sys.ClassifyClip(lc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	eng, err := NewEngine(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
		t.Fatal(err)
	}
	got, err := eng.ClassifyAll(ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("ClassifyAll differs from sequential per-clip classification")
	}
}

func TestEngineWorkersResolution(t *testing.T) {
	eng, err := NewEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", eng.Workers())
	}
	auto, err := NewEngine(0)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Workers() < 1 {
		t.Errorf("auto worker count = %d, want >= 1", auto.Workers())
	}
	if auto.System() == nil {
		t.Error("System() returned nil")
	}
}

func TestEngineTrainRequiresClips(t *testing.T) {
	eng, err := NewEngine(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
}
