package slj

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/dbn"
	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Engine drives a System across many clips on a pool of workers. The
// vision front end (extraction → thinning → skeleton graph → key-point
// encoding) is stateless across clips, so clips fan out over the pool;
// the DBN back end is temporal — each frame's posterior conditions on the
// previous frame's pose — so every clip is still decoded serially by one
// worker, and training consumes clip sequences in their original order.
// Results are therefore bit-identical to the sequential System methods
// regardless of worker count, and workers == 1 routes through the
// unchanged sequential code paths.
//
// Each worker owns a private extractor (extract.Extractor carries scratch
// buffers and is not safe for concurrent use) but all workers share one
// classifier bank: DBN inference is read-only, and only Train mutates it,
// from the calling goroutine. Engine methods are safe to call from
// multiple goroutines, except Train and LoadModel, which mutate the
// shared model and must not run concurrently with anything else.
type Engine struct {
	workers int
	sys     *System
	scope   *obs.Scope // captured at construction: workers relabel their
	// System's scope per clip, so e.sys.opts.Scope cannot be read while
	// systems are checked out
	systems []*System    // len == workers; systems[0] == sys
	free    chan *System // worker checkout; buffered to len(systems)

	inflight atomic.Int64 // source clips checked out by workers
}

// NewEngine builds a System from opts (as NewSystem would) and wraps it
// in an Engine with the given worker count. workers < 1 selects
// runtime.NumCPU().
func NewEngine(workers int, opts ...Option) (*Engine, error) {
	sys, err := NewSystem(opts...)
	if err != nil {
		return nil, err
	}
	return NewEngineFrom(sys, workers)
}

// NewEngineFrom wraps an existing — possibly already trained — System.
// The System must not be used directly while the Engine is active.
func NewEngineFrom(sys *System, workers int) (*Engine, error) {
	w := parallel.Workers(workers)
	e := &Engine{workers: w, sys: sys, scope: sys.opts.Scope}
	e.systems = make([]*System, w)
	e.systems[0] = sys
	for i := 1; i < w; i++ {
		clone, err := sys.clone()
		if err != nil {
			return nil, err
		}
		e.systems[i] = clone
	}
	e.free = make(chan *System, w)
	for _, s := range e.systems {
		e.free <- s
	}
	if sc := e.scope; sc != nil {
		// Hand the worker-pool instrument block to internal/parallel and
		// publish the starting pool occupancy.
		parallel.SetStats(sc.Parallel())
		sc.PoolFree(len(e.free))
	}
	return e, nil
}

// clone returns a System sharing s's options and classifier bank but
// owning a fresh extractor, so one Engine worker can run independently.
func (s *System) clone() (*System, error) {
	ex, err := extract.NewExtractor(s.opts.Extractor...)
	if err != nil {
		return nil, fmt.Errorf("slj: %w", err)
	}
	ex.SetScope(s.opts.Scope)
	c := &System{opts: s.opts, extractor: ex, classifier: s.classifier}
	if s.scratch != nil {
		c.scratch = newFrameScratch()
	}
	return c, nil
}

// Workers reports the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// System returns the primary underlying System (shared classifier).
func (e *Engine) System() *System { return e.sys }

// acquire checks a System out of the worker pool, timing any wait for a
// free one; release returns it. Both track the pool's free count.
func (e *Engine) acquire() *System {
	sc := e.scope
	if sc == nil {
		return <-e.free
	}
	select {
	case s := <-e.free:
		sc.PoolFree(len(e.free))
		return s
	default:
	}
	t0 := time.Now()
	s := <-e.free
	sc.AcquireStall(time.Since(t0))
	sc.PoolFree(len(e.free))
	return s
}

func (e *Engine) release(s *System) {
	e.free <- s
	e.scope.PoolFree(len(e.free))
}

// attachSource hands the engine's scope to sources that support
// instrumentation (dataset.clips_streamed, dataset.decode_ns).
func (e *Engine) attachSource(src dataset.ClipSource) {
	if s, ok := src.(interface{ SetScope(*obs.Scope) }); ok {
		s.SetScope(e.scope)
	}
}

// pullFrom wraps a source's Next with stall accounting: the time a
// worker spends inside Next (the serialised pull, including any header
// decode the source does there) accumulates in engine.source_stall_ns.
func (e *Engine) pullFrom(src dataset.ClipSource) func() (dataset.LabeledClip, error) {
	sc := e.scope
	if sc == nil {
		return src.Next
	}
	return func() (dataset.LabeledClip, error) {
		t0 := time.Now()
		lc, err := src.Next()
		sc.SourceStall(time.Since(t0))
		if err != nil && err != io.EOF {
			// A failed pull aborts the run (unless the source skips, see
			// dataset.SkipCorrupt); classify and journal it either way.
			sc.RecordError(errClassOf(err), err)
		}
		return lc, err
	}
}

// pullWrapped is pullFrom with the package's error prefix applied to
// failed pulls, matching what the sequential delegates report: a source
// error surfaces as fmt.Errorf("slj: %w", err) regardless of worker
// count. io.EOF passes through untouched — it terminates MapSource, it
// is not a failure.
func (e *Engine) pullWrapped(src dataset.ClipSource) func() (dataset.LabeledClip, error) {
	pull := e.pullFrom(src)
	return func() (dataset.LabeledClip, error) {
		lc, err := pull()
		if err != nil && err != io.EOF {
			return lc, fmt.Errorf("slj: %w", err)
		}
		return lc, err
	}
}

// trackClip counts a source clip checked out by a worker; the returned
// func checks it back in. The high-water mark lands in the
// engine.clips_in_flight gauge — peak decoded-clip residency, which the
// streaming paths bound to the worker count.
func (e *Engine) trackClip() func() {
	n := e.inflight.Add(1)
	e.scope.ClipsInFlight(int(n))
	return func() { e.inflight.Add(-1) }
}

// seqTracked wraps a source for the engine's sequential (workers <= 1)
// delegates so they share the parallel path's accounting: each pull is
// timed into engine.source_stall_ns, and the clip stays checked out —
// counted in engine.clips_in_flight — until the next pull replaces it.
// The gauge therefore reads the true single-clip residency of the
// sequential path rather than zero.
type seqTracked struct {
	src     dataset.ClipSource
	e       *Engine
	pull    func() (dataset.LabeledClip, error)
	checkin func()
}

func (e *Engine) seqSource(src dataset.ClipSource) *seqTracked {
	return &seqTracked{src: src, e: e, pull: e.pullFrom(src)}
}

func (t *seqTracked) Next() (dataset.LabeledClip, error) {
	if t.checkin != nil {
		t.checkin()
		t.checkin = nil
	}
	lc, err := t.pull()
	if err != nil {
		return lc, err
	}
	t.checkin = t.e.trackClip()
	return lc, nil
}

// settle fires the pending checkin, if any. Next normally checks the
// previous clip back in on the following pull; when the consumer aborts
// early — a classify error, or Close before io.EOF — the last clip would
// otherwise stay checked out forever, skewing the inflight accounting a
// long-lived engine's admission control reads.
func (t *seqTracked) settle() {
	if t.checkin != nil {
		t.checkin()
		t.checkin = nil
	}
}

func (t *seqTracked) Close() error {
	t.settle()
	return t.src.Close()
}

// Train trains the shared classifier on every clip, materialised-slice
// form. It is a thin adapter over TrainSource.
func (e *Engine) Train(clips []dataset.LabeledClip) error {
	if len(clips) == 0 {
		return errors.New("slj: no training clips")
	}
	return e.TrainSource(dataset.Materialized(clips))
}

// TrainSource trains the shared classifier on every clip the source
// yields. The front-end analysis of the clips fans out over the worker
// pool, pulling clips on demand so at most `workers` decoded clips are
// in flight; the resulting labelled sequences are then fed to the DBN
// bank serially, in source order, because training updates depend on
// sequence order. The trained model is byte-identical to System.Train's
// on the same clips. The source is consumed to io.EOF but not closed.
func (e *Engine) TrainSource(src dataset.ClipSource) error {
	e.attachSource(src)
	if e.workers <= 1 {
		ts := e.seqSource(src)
		defer ts.settle()
		return e.sys.TrainSource(ts)
	}
	type clipSeq struct {
		name   string
		frames []dbn.LabeledFrame
	}
	seqs, err := parallel.MapSource(e.workers, e.pullWrapped(src),
		func(_ int, lc dataset.LabeledClip) (clipSeq, error) {
			defer e.trackClip()()
			s := e.acquire()
			defer e.release(s)
			defer s.observeClip(lc.Name)()
			fas, err := s.analyzeClip(lc)
			if err != nil {
				return clipSeq{}, err
			}
			frames := make([]dbn.LabeledFrame, len(fas))
			for j, fa := range fas {
				frames[j] = dbn.LabeledFrame{Label: lc.Clip.Frames[j].Label, Enc: fa.Encoding}
			}
			return clipSeq{name: lc.Name, frames: frames}, nil
		})
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return errors.New("slj: no training clips")
	}
	for _, cs := range seqs {
		if err := e.sys.classifier.TrainSequence(cs.frames); err != nil {
			return fmt.Errorf("slj: training on %s: %w", cs.name, err)
		}
	}
	return nil
}

// Evaluate classifies every test clip and scores the results against
// ground truth, materialised-slice form. It is a thin adapter over
// EvaluateSource.
func (e *Engine) Evaluate(clips []dataset.LabeledClip) (stats.Summary, *stats.Confusion, error) {
	return e.EvaluateSource(dataset.Materialized(clips))
}

// clipScore carries one classified clip's truth and prediction out of
// the worker pool; the decoded images are dropped with the clip.
type clipScore struct {
	name         string
	truth, preds []Pose
}

// EvaluateSource classifies every clip the source yields on the worker
// pool and scores the results against ground truth. Clips are pulled on
// demand — peak residency is bounded by the worker count — and the
// summary and confusion matrix are accumulated in source order
// afterwards, so the output matches System.Evaluate over the same clips
// exactly. The source is consumed to io.EOF but not closed.
func (e *Engine) EvaluateSource(src dataset.ClipSource) (stats.Summary, *stats.Confusion, error) {
	e.attachSource(src)
	if e.workers <= 1 {
		ts := e.seqSource(src)
		defer ts.settle()
		return e.sys.EvaluateSource(ts)
	}
	scores, err := parallel.MapSource(e.workers, e.pullWrapped(src),
		func(_ int, lc dataset.LabeledClip) (clipScore, error) {
			defer e.trackClip()()
			s := e.acquire()
			defer e.release(s)
			res, err := s.ClassifyClip(lc)
			if err != nil {
				return clipScore{}, err
			}
			return clipScore{name: lc.Name, truth: lc.Clip.Labels(), preds: Poses(res)}, nil
		})
	if err != nil {
		return stats.Summary{}, nil, err
	}
	var sum stats.Summary
	var conf stats.Confusion
	for _, cs := range scores {
		cr, err := stats.EvaluateClip(cs.name, cs.truth, cs.preds)
		if err != nil {
			return stats.Summary{}, nil, fmt.Errorf("slj: %w", err)
		}
		sum.Add(cr)
		for i := range cs.truth {
			conf.Add(cs.truth[i], cs.preds[i])
		}
	}
	return sum, &conf, nil
}

// ClassifyAll decodes every clip, materialised-slice form. It is a thin
// adapter over ClassifyAllSource.
func (e *Engine) ClassifyAll(clips []dataset.LabeledClip) ([][]dbn.Result, error) {
	return e.ClassifyAllSource(dataset.Materialized(clips))
}

// ClassifyAllSource decodes every clip the source yields on the worker
// pool, returning per-clip frame results in source order. The source is
// consumed to io.EOF but not closed.
func (e *Engine) ClassifyAllSource(src dataset.ClipSource) ([][]dbn.Result, error) {
	e.attachSource(src)
	if e.workers <= 1 {
		ts := e.seqSource(src)
		defer ts.settle()
		var out [][]dbn.Result
		for {
			lc, err := ts.Next()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, fmt.Errorf("slj: %w", err)
			}
			res, err := e.sys.ClassifyClip(lc)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return parallel.MapSource(e.workers, e.pullWrapped(src),
		func(_ int, lc dataset.LabeledClip) ([]dbn.Result, error) {
			defer e.trackClip()()
			s := e.acquire()
			defer e.release(s)
			return s.ClassifyClip(lc)
		})
}

// CheckedOut reports the number of source clips currently checked out by
// workers — the live value behind the engine.clips_in_flight gauge. A
// quiescent engine reads zero; serving layers use this for leak checks
// and admission accounting.
func (e *Engine) CheckedOut() int64 { return e.inflight.Load() }

// PoolFree reports how many worker Systems are currently free — the live
// value behind the engine.pool_free gauge.
func (e *Engine) PoolFree() int { return len(e.free) }

// ClassifyClip decodes one clip. With more than one worker the per-frame
// front end runs as a bounded two-stage pipeline (silhouette production,
// then thinning + graph + encoding) so extraction of frame i+1 overlaps
// analysis of frame i; DBN decoding stays serial. AutoOrient needs every
// silhouette before its mirror decision, so it falls back to the batch
// path.
func (e *Engine) ClassifyClip(lc dataset.LabeledClip) ([]dbn.Result, error) {
	s := e.acquire()
	defer e.release(s)
	if e.workers <= 1 || s.opts.AutoOrient {
		return s.ClassifyClip(lc)
	}
	return s.classifyClipPipelined(lc)
}

// SaveModel serialises the shared classifier bank.
func (e *Engine) SaveModel(w io.Writer) error { return e.sys.SaveModel(w) }

// LoadModel replaces the shared classifier on every worker.
func (e *Engine) LoadModel(r io.Reader) error {
	if err := e.sys.LoadModel(r); err != nil {
		return err
	}
	for _, s := range e.systems[1:] {
		s.classifier = e.sys.classifier
		s.opts.Partitions = e.sys.opts.Partitions
		s.opts.Rings = e.sys.opts.Rings
	}
	return nil
}

// frameToken carries one frame through the two-stage analysis pipeline.
type frameToken struct {
	sil *imaging.Binary
	fa  FrameAnalysis
}

// pipelineBound caps the frames in flight between pipeline stages,
// bounding the number of live silhouette buffers per clip.
const pipelineBound = 4

// classifyClipPipelined is ClassifyClip with the per-frame front end run
// as a bounded-channel pipeline. Stage 1 (silhouette production) is
// stateful — the ROI tracker conditions on the previous frame — and runs
// in a single goroutine in frame order, exactly like the batch path;
// stage 2 (skeleton analysis) is pure per-frame. Outputs are collected in
// frame order, so results match the sequential decoder bit for bit.
func (s *System) classifyClipPipelined(lc dataset.LabeledClip) ([]dbn.Result, error) {
	defer s.observeClip(lc.Name)()
	src, err := s.silhouetteSource(lc)
	if err != nil {
		return nil, err
	}
	toks := make([]frameToken, len(lc.Clip.Frames))
	out, err := parallel.Pipeline(pipelineBound, toks,
		func(i int, t frameToken) (frameToken, error) {
			sil, err := src(i)
			if err != nil {
				return t, err
			}
			t.sil = sil
			return t, nil
		},
		func(_ int, t frameToken) (frameToken, error) {
			t.fa = s.AnalyzeSilhouette(t.sil)
			return t, nil
		},
	)
	owned := s.scratch != nil && !s.opts.UseGroundTruthSilhouettes
	if err != nil {
		// Pipeline returns partial results on error: every token that
		// cleared both stages before the failure still carries its
		// silhouette. Stage 1 runs in frame order, so no silhouette is
		// produced past the failing index — releasing the partial set
		// returns everything the extractor handed out for this clip.
		if owned {
			for _, t := range out {
				if t.sil != nil {
					imaging.PutBinary(t.sil)
				}
			}
		}
		return nil, err
	}
	encs := make([]keypoint.Encoding, len(out))
	for i, t := range out {
		encs[i] = t.fa.Encoding
	}
	if owned {
		// All stages have joined and the encodings are copied out, so the
		// extractor-produced silhouettes can go back to the imaging pool.
		for _, t := range out {
			if t.sil != nil {
				imaging.PutBinary(t.sil)
			}
		}
	}
	res, err := s.classifier.ClassifySequenceScoped(encs, s.opts.Scope)
	if err != nil {
		return nil, fmt.Errorf("slj: classifying %s: %w", lc.Name, err)
	}
	return res, nil
}
