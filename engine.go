package slj

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/dbn"
	"repro/internal/extract"
	"repro/internal/imaging"
	"repro/internal/keypoint"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Engine drives a System across many clips on a pool of workers. The
// vision front end (extraction → thinning → skeleton graph → key-point
// encoding) is stateless across clips, so clips fan out over the pool;
// the DBN back end is temporal — each frame's posterior conditions on the
// previous frame's pose — so every clip is still decoded serially by one
// worker, and training consumes clip sequences in their original order.
// Results are therefore bit-identical to the sequential System methods
// regardless of worker count, and workers == 1 routes through the
// unchanged sequential code paths.
//
// Each worker owns a private extractor (extract.Extractor carries scratch
// buffers and is not safe for concurrent use) but all workers share one
// classifier bank: DBN inference is read-only, and only Train mutates it,
// from the calling goroutine. Engine methods are safe to call from
// multiple goroutines, except Train and LoadModel, which mutate the
// shared model and must not run concurrently with anything else.
type Engine struct {
	workers int
	sys     *System
	scope   *obs.Scope // captured at construction: workers relabel their
	// System's scope per clip, so e.sys.opts.Scope cannot be read while
	// systems are checked out
	systems []*System    // len == workers; systems[0] == sys
	free    chan *System // worker checkout; buffered to len(systems)
}

// NewEngine builds a System from opts (as NewSystem would) and wraps it
// in an Engine with the given worker count. workers < 1 selects
// runtime.NumCPU().
func NewEngine(workers int, opts ...Option) (*Engine, error) {
	sys, err := NewSystem(opts...)
	if err != nil {
		return nil, err
	}
	return NewEngineFrom(sys, workers)
}

// NewEngineFrom wraps an existing — possibly already trained — System.
// The System must not be used directly while the Engine is active.
func NewEngineFrom(sys *System, workers int) (*Engine, error) {
	w := parallel.Workers(workers)
	e := &Engine{workers: w, sys: sys, scope: sys.opts.Scope}
	e.systems = make([]*System, w)
	e.systems[0] = sys
	for i := 1; i < w; i++ {
		clone, err := sys.clone()
		if err != nil {
			return nil, err
		}
		e.systems[i] = clone
	}
	e.free = make(chan *System, w)
	for _, s := range e.systems {
		e.free <- s
	}
	if sc := e.scope; sc != nil {
		// Hand the worker-pool instrument block to internal/parallel and
		// publish the starting pool occupancy.
		parallel.SetStats(sc.Parallel())
		sc.PoolFree(len(e.free))
	}
	return e, nil
}

// clone returns a System sharing s's options and classifier bank but
// owning a fresh extractor, so one Engine worker can run independently.
func (s *System) clone() (*System, error) {
	ex, err := extract.NewExtractor(s.opts.Extractor...)
	if err != nil {
		return nil, fmt.Errorf("slj: %w", err)
	}
	ex.SetScope(s.opts.Scope)
	return &System{opts: s.opts, extractor: ex, classifier: s.classifier}, nil
}

// Workers reports the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// System returns the primary underlying System (shared classifier).
func (e *Engine) System() *System { return e.sys }

// acquire checks a System out of the worker pool, timing any wait for a
// free one; release returns it. Both track the pool's free count.
func (e *Engine) acquire() *System {
	sc := e.scope
	if sc == nil {
		return <-e.free
	}
	select {
	case s := <-e.free:
		sc.PoolFree(len(e.free))
		return s
	default:
	}
	t0 := time.Now()
	s := <-e.free
	sc.AcquireStall(time.Since(t0))
	sc.PoolFree(len(e.free))
	return s
}

func (e *Engine) release(s *System) {
	e.free <- s
	e.scope.PoolFree(len(e.free))
}

// Train trains the shared classifier on every clip. The front-end
// analysis of the clips fans out over the worker pool; the resulting
// labelled sequences are then fed to the DBN bank serially, in clip
// order, because training updates depend on sequence order. The trained
// model is byte-identical to System.Train's.
func (e *Engine) Train(clips []dataset.LabeledClip) error {
	if len(clips) == 0 {
		return errors.New("slj: no training clips")
	}
	if e.workers <= 1 {
		return e.sys.Train(clips)
	}
	seqs, err := parallel.MapOrdered(e.workers, clips,
		func(_ int, lc dataset.LabeledClip) ([]dbn.LabeledFrame, error) {
			s := e.acquire()
			defer e.release(s)
			defer s.observeClip(lc.Name)()
			fas, err := s.analyzeClip(lc)
			if err != nil {
				return nil, err
			}
			frames := make([]dbn.LabeledFrame, len(fas))
			for j, fa := range fas {
				frames[j] = dbn.LabeledFrame{Label: lc.Clip.Frames[j].Label, Enc: fa.Encoding}
			}
			return frames, nil
		})
	if err != nil {
		return err
	}
	for ci, frames := range seqs {
		if err := e.sys.classifier.TrainSequence(frames); err != nil {
			return fmt.Errorf("slj: training on %s: %w", clips[ci].Name, err)
		}
	}
	return nil
}

// Evaluate classifies every test clip on the worker pool and scores the
// results against ground truth. Classification fans out; the summary and
// confusion matrix are accumulated in clip order afterwards, so the
// output matches System.Evaluate exactly.
func (e *Engine) Evaluate(clips []dataset.LabeledClip) (stats.Summary, *stats.Confusion, error) {
	if e.workers <= 1 {
		return e.sys.Evaluate(clips)
	}
	preds, err := parallel.MapOrdered(e.workers, clips,
		func(_ int, lc dataset.LabeledClip) ([]dbn.Result, error) {
			s := e.acquire()
			defer e.release(s)
			return s.ClassifyClip(lc)
		})
	if err != nil {
		return stats.Summary{}, nil, err
	}
	var sum stats.Summary
	var conf stats.Confusion
	for ci, results := range preds {
		lc := clips[ci]
		pred := Poses(results)
		truth := lc.Clip.Labels()
		cr, err := stats.EvaluateClip(lc.Name, truth, pred)
		if err != nil {
			return stats.Summary{}, nil, fmt.Errorf("slj: %w", err)
		}
		sum.Add(cr)
		for i := range truth {
			conf.Add(truth[i], pred[i])
		}
	}
	return sum, &conf, nil
}

// ClassifyAll decodes every clip on the worker pool, returning per-clip
// frame results in input order.
func (e *Engine) ClassifyAll(clips []dataset.LabeledClip) ([][]dbn.Result, error) {
	if e.workers <= 1 {
		out := make([][]dbn.Result, len(clips))
		for i, lc := range clips {
			res, err := e.sys.ClassifyClip(lc)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	return parallel.MapOrdered(e.workers, clips,
		func(_ int, lc dataset.LabeledClip) ([]dbn.Result, error) {
			s := e.acquire()
			defer e.release(s)
			return s.ClassifyClip(lc)
		})
}

// ClassifyClip decodes one clip. With more than one worker the per-frame
// front end runs as a bounded two-stage pipeline (silhouette production,
// then thinning + graph + encoding) so extraction of frame i+1 overlaps
// analysis of frame i; DBN decoding stays serial. AutoOrient needs every
// silhouette before its mirror decision, so it falls back to the batch
// path.
func (e *Engine) ClassifyClip(lc dataset.LabeledClip) ([]dbn.Result, error) {
	s := e.acquire()
	defer e.release(s)
	if e.workers <= 1 || s.opts.AutoOrient {
		return s.ClassifyClip(lc)
	}
	return s.classifyClipPipelined(lc)
}

// SaveModel serialises the shared classifier bank.
func (e *Engine) SaveModel(w io.Writer) error { return e.sys.SaveModel(w) }

// LoadModel replaces the shared classifier on every worker.
func (e *Engine) LoadModel(r io.Reader) error {
	if err := e.sys.LoadModel(r); err != nil {
		return err
	}
	for _, s := range e.systems[1:] {
		s.classifier = e.sys.classifier
		s.opts.Partitions = e.sys.opts.Partitions
		s.opts.Rings = e.sys.opts.Rings
	}
	return nil
}

// frameToken carries one frame through the two-stage analysis pipeline.
type frameToken struct {
	sil *imaging.Binary
	fa  FrameAnalysis
}

// pipelineBound caps the frames in flight between pipeline stages,
// bounding the number of live silhouette buffers per clip.
const pipelineBound = 4

// classifyClipPipelined is ClassifyClip with the per-frame front end run
// as a bounded-channel pipeline. Stage 1 (silhouette production) is
// stateful — the ROI tracker conditions on the previous frame — and runs
// in a single goroutine in frame order, exactly like the batch path;
// stage 2 (skeleton analysis) is pure per-frame. Outputs are collected in
// frame order, so results match the sequential decoder bit for bit.
func (s *System) classifyClipPipelined(lc dataset.LabeledClip) ([]dbn.Result, error) {
	defer s.observeClip(lc.Name)()
	src, err := s.silhouetteSource(lc)
	if err != nil {
		return nil, err
	}
	toks := make([]frameToken, len(lc.Clip.Frames))
	out, err := parallel.Pipeline(pipelineBound, toks,
		func(i int, t frameToken) (frameToken, error) {
			sil, err := src(i)
			if err != nil {
				return t, err
			}
			t.sil = sil
			return t, nil
		},
		func(_ int, t frameToken) (frameToken, error) {
			t.fa = s.AnalyzeSilhouette(t.sil)
			return t, nil
		},
	)
	if err != nil {
		return nil, err
	}
	encs := make([]keypoint.Encoding, len(out))
	for i, t := range out {
		encs[i] = t.fa.Encoding
	}
	res, err := s.classifier.ClassifySequenceScoped(encs, s.opts.Scope)
	if err != nil {
		return nil, fmt.Errorf("slj: classifying %s: %w", lc.Name, err)
	}
	return res, nil
}
