package slj

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// saveCorpus writes ds as an on-disk corpus and returns its root.
func saveCorpus(t *testing.T, ds *Dataset) string {
	t.Helper()
	root := t.TempDir()
	if err := dataset.Save(root, ds); err != nil {
		t.Fatal(err)
	}
	return root
}

// openSplit opens a streaming source over one split of the corpus.
func openSplit(t *testing.T, root, split string) *dataset.DirSource {
	t.Helper()
	src, err := dataset.OpenDir(filepath.Join(root, split))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestStreamingMatchesMaterialized is the streaming layer's golden
// parity test: training and evaluating through lazy DirSources must
// produce byte-identical models and identical summaries/confusions to
// dataset.Load plus the slice APIs on a sequential System, at every
// worker count — while the obs counters prove the clips actually
// streamed and peak decoded-clip residency stayed within the worker
// bound.
func TestStreamingMatchesMaterialized(t *testing.T) {
	ds := smallDataset(t, 71)
	root := saveCorpus(t, ds)

	// Golden: one up-front Load, sequential System slice APIs.
	loaded, err := dataset.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	sys, model := trainGolden(t, loaded)
	wantSum, wantConf, err := sys.Evaluate(loaded.Test)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		scope := obs.NewScope(obs.NewRegistry())
		eng, err := NewEngine(workers, WithObservability(scope))
		if err != nil {
			t.Fatal(err)
		}

		trainSrc := openSplit(t, root, "train")
		err = eng.TrainSource(trainSrc)
		trainSrc.Close()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := eng.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), model) {
			t.Errorf("workers=%d: streamed model differs from materialized sequential", workers)
		}

		testSrc := openSplit(t, root, "test")
		sum, conf, err := eng.EvaluateSource(testSrc)
		testSrc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sum, wantSum) {
			t.Errorf("workers=%d: streamed summary differs from materialized sequential", workers)
		}
		if !reflect.DeepEqual(*conf, *wantConf) {
			t.Errorf("workers=%d: streamed confusion differs from materialized sequential", workers)
		}

		snap := scope.Registry().Snapshot()
		counters := map[string]int64{}
		for _, c := range snap.Counters {
			counters[c.Name] = c.Value
		}
		gauges := map[string]int64{}
		for _, g := range snap.Gauges {
			gauges[g.Name] = g.Value
		}
		if want := int64(len(loaded.Train) + len(loaded.Test)); counters["dataset.clips_streamed"] != want {
			t.Errorf("workers=%d: dataset.clips_streamed = %d, want %d",
				workers, counters["dataset.clips_streamed"], want)
		}
		peak := gauges["engine.clips_in_flight"]
		if peak < 1 || peak > int64(workers) {
			t.Errorf("workers=%d: peak clips in flight = %d, want in [1,%d]", workers, peak, workers)
		}
		decoded := false
		for _, h := range snap.Histograms {
			if h.Name == "dataset.decode_ns" && h.Count > 0 {
				decoded = true
			}
		}
		if !decoded {
			t.Errorf("workers=%d: dataset.decode_ns recorded no decodes", workers)
		}
	}
}

// TestStreamingEvaluateCorruptClip garbles one clip in the middle of
// the test split and checks that the streaming evaluation fails with an
// error naming that clip — at both the sequential and the parallel
// worker count — instead of hanging or reporting a partial summary.
func TestStreamingEvaluateCorruptClip(t *testing.T) {
	ds, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 2, TestClips: 3, Seed: 72, FaultEvery: 0, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := saveCorpus(t, ds)
	_, model := trainGolden(t, ds)

	// Garble a frame image of the middle test clip: the clip header
	// still opens, so the failure surfaces mid-stream, inside a worker.
	victim := filepath.Join(root, "test", "test-01", "frame-002.ppm")
	if err := os.WriteFile(victim, []byte("not a ppm"), 0o644); err != nil {
		t.Fatal(err)
	}

	var want string
	for _, workers := range []int{1, 4, 8} {
		eng, err := NewEngine(workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
			t.Fatal(err)
		}
		src := openSplit(t, root, "test")
		_, _, err = eng.EvaluateSource(src)
		src.Close()
		if err == nil {
			t.Fatalf("workers=%d: corrupt clip evaluated without error", workers)
		}
		if !strings.Contains(err.Error(), "test-01") {
			t.Errorf("workers=%d: error %q does not name the corrupt clip test-01", workers, err)
		}
		// The message must not depend on the worker count.
		if workers == 1 {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("workers=%d: error %q differs from sequential error %q", workers, err, want)
		}
	}
}

// TestStreamingSourceErrorMessageParity garbles a clip HEADER — so the
// failure surfaces in the source pull (Next) rather than inside a
// worker's frame loop — and pins the error text across worker counts:
// the sequential delegates wrap source errors with the package prefix
// ("slj: ..."), and the parallel MapSource paths must report the
// byte-identical message at workers 8.
func TestStreamingSourceErrorMessageParity(t *testing.T) {
	ds, err := GenerateDataset(dataset.GenOptions{
		TrainClips: 2, TestClips: 3, Seed: 72, FaultEvery: 0, VaryBody: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := saveCorpus(t, ds)
	_, model := trainGolden(t, ds)

	// Garbling the background makes OpenClip — and therefore Next — fail.
	victim := filepath.Join(root, "test", "test-01", "background.ppm")
	if err := os.WriteFile(victim, []byte("not a ppm"), 0o644); err != nil {
		t.Fatal(err)
	}

	calls := []struct {
		name string
		run  func(e *Engine, src dataset.ClipSource) error
	}{
		{"EvaluateSource", func(e *Engine, src dataset.ClipSource) error {
			_, _, err := e.EvaluateSource(src)
			return err
		}},
		{"ClassifyAllSource", func(e *Engine, src dataset.ClipSource) error {
			_, err := e.ClassifyAllSource(src)
			return err
		}},
	}
	for _, call := range calls {
		var want string
		for _, workers := range []int{1, 8} {
			eng, err := NewEngine(workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.LoadModel(bytes.NewReader(model)); err != nil {
				t.Fatal(err)
			}
			src := openSplit(t, root, "test")
			err = call.run(eng, src)
			src.Close()
			if err == nil {
				t.Fatalf("%s workers=%d: corrupt header streamed without error", call.name, workers)
			}
			if !strings.Contains(err.Error(), "test-01") {
				t.Errorf("%s workers=%d: error %q does not name the corrupt clip", call.name, workers, err)
			}
			if !strings.HasPrefix(err.Error(), "slj: ") {
				t.Errorf("%s workers=%d: error %q lacks the package prefix", call.name, workers, err)
			}
			if workers == 1 {
				want = err.Error()
			} else if err.Error() != want {
				t.Errorf("%s workers=%d: error %q differs from sequential error %q",
					call.name, workers, err, want)
			}
		}
	}
}
