# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet sljcheck lint lint-hotpath test race test-race bench bench-json bench-smoke bench-stream bench-gate bench-baseline report health-smoke serve-smoke experiments figures fuzz clean

all: build lint test

build:
	go build ./...

vet:
	go vet ./...

# Project-specific analyzers (allocfree, maporder, metricnames, nondet,
# pooldiscipline, syncmisuse) — see DESIGN.md §8 and §13 and
# `go run ./cmd/sljcheck -list`. One invocation type-checks the module
# exactly once and runs every analyzer — per-package and whole-program
# alike — over that shared program, so adding analyzers does not add
# load time.
sljcheck:
	go run ./cmd/sljcheck ./...

lint: vet sljcheck

# Print the current //slj:hotpath reachability set (one function per
# line with its discovery chain) — diff it between commits to review
# hot-path growth.
lint-hotpath:
	go run ./cmd/sljcheck -hotpath ./...

test:
	go test ./...

race:
	go test -race -timeout 45m ./internal/extract/ ./internal/bayes/ ./internal/dbn/ ./internal/track/ ./internal/parallel/ ./internal/obs/ ./internal/serve/ .

# Full race sweep — every package, including the parallel engine's golden
# tests. Slower than `race`; run before merging concurrency changes.
test-race:
	go test -race -timeout 45m ./...

bench:
	go test -bench=. -benchmem ./...

# Snapshot the whole benchmark suite (ns/op, B/op, allocs/op) into a
# dated JSON file for before/after perf comparisons.
bench-json:
	go test -bench . -benchmem -run '^$$' ./... | tee bench_output.txt | go run ./cmd/benchjson > BENCH_$$(date +%F).json

# CI smoke: a single-iteration benchmark pass over the hot packages plus
# a metrics snapshot from an instrumented mini evaluation. Produces
# BENCH_smoke.json and metrics_snapshot.json for artifact upload.
bench-smoke:
	go test -bench . -benchmem -benchtime 1x -run '^$$' . ./internal/parallel/ ./internal/thinning/ | tee bench_output.txt | go run ./cmd/benchjson > BENCH_smoke.json
	go run ./cmd/sljgen -out smoke_data -train 2 -test 1
	go run ./cmd/sljeval -data smoke_data -workers 4 -metrics-out metrics_snapshot.json > /dev/null
	rm -rf smoke_data

# Benchmark regression gate: run the per-stage hot-path benchmarks and
# fail if allocs/op or ns/op regressed against the committed baseline.
# Allocations are gated tightly (deterministic per toolchain, +10% and
# 2 allocs of slack); wall time loosely (+500%, CI machines vary). Refresh
# the baseline with `make bench-baseline` when a PR legitimately changes
# the numbers, and commit BENCH_baseline.json alongside the change.
bench-gate:
	go test -bench 'BenchmarkStage' -benchmem -benchtime 10x -run '^$$' . | tee bench_output.txt | \
		go run ./cmd/benchjson -compare BENCH_baseline.json -max-allocs-regress 10 -allocs-slack 2 -max-ns-regress 500 > BENCH_gate.json

bench-baseline:
	go test -bench 'BenchmarkStage' -benchmem -benchtime 10x -run '^$$' . | go run ./cmd/benchjson > BENCH_baseline.json

# Streaming-corpus benchmark + round trip: snapshot the streaming
# evaluation benchmarks (frames/s and peak decoded-clip residency land
# in the JSON's "extra" field) into BENCH_stream.json, then prove the
# save -> stream -> evaluate path end to end on a generated corpus.
bench-stream:
	go test -bench BenchmarkStreamEvaluate -benchmem -benchtime 1x -run '^$$' . | tee bench_output.txt | go run ./cmd/benchjson > BENCH_stream.json
	go run ./cmd/sljgen -out stream_data -train 2 -test 1
	go run ./cmd/sljeval -data stream_data -stream -workers 4 -metrics-out metrics_stream.json > /dev/null
	rm -rf stream_data

# End-of-run report + live dashboard smoke: run an instrumented mini
# evaluation with the sampler on, render one sljtop frame against its
# live /debug endpoints while the job is still running, and leave
# RUN_REPORT.json + RUN_REPORT.md behind for artifact upload. Binaries
# are prebuilt so sljtop's connect retries race the evaluation, not the
# compiler.
report:
	mkdir -p .report_bin
	go build -o .report_bin/ ./cmd/sljeval ./cmd/sljtop
	go run ./cmd/sljgen -out report_data -train 4 -test 6
	./.report_bin/sljeval -data report_data -workers 4 -metrics 127.0.0.1:6070 \
		-sample-interval 100ms -report RUN_REPORT.json \
		-errors-out ERRORS.json -health-out HEALTH.json > /dev/null & \
	EVAL=$$!; \
	./.report_bin/sljtop -addr 127.0.0.1:6070 -once -connect-timeout 10s | tee sljtop_once.txt; \
	TOP=$$?; \
	wait $$EVAL; \
	EV=$$?; \
	rm -rf report_data .report_bin; \
	test $$TOP -eq 0 && test $$EV -eq 0
	grep -q "stage.classify.ns" sljtop_once.txt
	test -s RUN_REPORT.json && test -s RUN_REPORT.md
	test -s ERRORS.json && test -s HEALTH.json
	grep -q '"verdict"' HEALTH.json

# Flight-recorder smoke: generate a corpus, corrupt one test clip, and
# run an instrumented streaming evaluation with skip-corrupt ingest.
# The run must finish, journal the decode failure, and report a
# degraded health verdict with the decode class attributed — the same
# trace ID correlating HEALTH_smoke.json and ERRORS_smoke.json.
health-smoke:
	go run ./cmd/sljgen -out health_data -train 2 -test 3
	BAD=$$(ls -d health_data/test/*/ | head -1); \
	echo "not a ppm" > $$BAD/background.ppm
	go run ./cmd/sljeval -data health_data -stream -skip-corrupt -workers 2 \
		-sample-interval 100ms -log health_smoke.log \
		-errors-out ERRORS_smoke.json -health-out HEALTH_smoke.json > /dev/null
	rm -rf health_data
	grep -q '"verdict": "degraded"' HEALTH_smoke.json
	grep -q '"name": "decode_errors"' HEALTH_smoke.json
	grep -q '"class": "decode"' ERRORS_smoke.json
	TRACE=$$(grep -o '"trace": "t[0-9]*"' ERRORS_smoke.json | head -1); \
	test -n "$$TRACE" && grep -qF "$$TRACE" HEALTH_smoke.json

# Serving-layer smoke: start sljserve on an ephemeral port, drive it
# with sljload, and assert the serving contract end to end — clean run
# fully served with zero pool-leak gauges, overload run shed with 503,
# SIGTERM drains and exits 0. See scripts/serve_smoke.sh.
serve-smoke:
	sh scripts/serve_smoke.sh

# Regenerate every paper figure/result at full size (see DESIGN.md §4).
experiments:
	go run ./cmd/sljexp -exp all -artifacts figures/ | tee results_full.txt

figures:
	go run ./cmd/sljexp -exp fig1,fig5,fig7,fig8 -artifacts figures/

# Short fuzz pass over the codecs (the decoders are fuzz-hardened).
fuzz:
	go test -fuzz FuzzDecodePGM -fuzztime 10s ./internal/imaging/
	go test -fuzz FuzzDecodePPM -fuzztime 10s ./internal/imaging/
	go test -fuzz FuzzDecodePBM -fuzztime 10s ./internal/imaging/
	go test -fuzz FuzzReader -fuzztime 10s ./internal/video/

clean:
	rm -rf figures/ results_full.txt sljcheck_findings.json test_output.txt bench_output.txt smoke_data BENCH_smoke.json BENCH_gate.json metrics_snapshot.json stream_data BENCH_stream.json metrics_stream.json report_data .report_bin RUN_REPORT.json RUN_REPORT.md sljtop_once.txt ERRORS.json HEALTH.json health_data ERRORS_smoke.json HEALTH_smoke.json health_smoke.log
