package slj

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// errClassOf maps a pipeline error onto the obs error taxonomy for the
// journal: corpus decode failures (dataset.ErrCorrupt anywhere in the
// chain) are decode errors; everything else that reaches a journaling
// call site is residual I/O. The front-end-specific classes
// (degenerate skeleton, no torso, key-point miss, DBN Unknown) are
// recorded at their detection sites inside obs.Scope, not here —
// those failures are counters, not Go errors.
func errClassOf(err error) obs.ErrClass {
	if errors.Is(err, dataset.ErrCorrupt) {
		return obs.ErrClassDecode
	}
	return obs.ErrClassIO
}
