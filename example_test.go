package slj_test

import (
	"fmt"
	"log"

	slj "repro"
	"repro/internal/dataset"
	"repro/internal/pose"
)

// Example demonstrates the complete workflow: generate a corpus, train
// the system, and grade a held-out jump.
func Example() {
	ds, err := slj.GenerateDataset(dataset.GenOptions{
		TrainClips: 2, TestClips: 1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(ds.Train); err != nil {
		log.Fatal(err)
	}
	results, err := sys.ClassifyClip(ds.Test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d frames\n", len(results))
	// Output: classified 42 frames
}

// ExampleSystem_AnalyzeSilhouette shows the Section 3 front end on a
// single synthetic silhouette.
func ExampleSystem_AnalyzeSilhouette() {
	sys, err := slj.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	clip, err := slj.GenerateClipFromSpec(slj.DefaultSpec(1))
	if err != nil {
		log.Fatal(err)
	}
	fa := sys.AnalyzeSilhouette(clip.Frames[0].Silhouette)
	fmt.Println("key points found:", fa.KeyPointsOK)
	fmt.Println("areas:", fa.Encoding.Partitions)
	// Output:
	// key points found: true
	// areas: 8
}

// ExamplePoses shows extracting the decided sequence from results.
func ExamplePoses() {
	fmt.Println(len(slj.Poses(nil)), pose.StandHandsAtSides)
	// Output: 0 standing & hands overlap with body
}
